//! The resident server: TCP accept loop, session threads, shared warm
//! state, and certificate-gated admission control.
//!
//! One process holds named catalogs of loaded relations and compiled
//! programs, plus a single process-wide [`SharedIndexCache`] so the
//! build-side join indices one request constructs are warm for the next —
//! across sessions, not just across statements. Every `run`/`query` is
//! admission-checked *before* execution: the Theorem-2 certificate is
//! evaluated against the resident catalog's cardinalities
//! ([`mjoin_analyze::admission_report`]), and a request whose certified
//! per-statement bound exceeds `--max-cost` is rejected with the offending
//! statement and bound — it never reaches an operator. Admitted requests
//! pass through a bounded-FIFO capacity gate that keeps the *sum* of
//! in-flight certified peaks under the same budget, so concurrent sessions
//! cannot multiply past it.
//!
//! Shutdown is cooperative: the `shutdown` command raises a flag, the
//! accept loop stops, sessions finish their in-flight request (deadlines
//! still apply), and the worker pool is parked before `run` returns.

use crate::json::Value as J;
use crate::protocol::{err, err_with, ok, Request};
use mjoin_analyze::{admission_report, memory_report, AdmissionReport, AnalysisCx, Certificate};
use mjoin_core::derive;
use mjoin_cq::{
    execute_query_with, parse_query, query_agm_bound, ExecOptions as CqExecOptions,
    MinimizeSummary, NamedDatabase, PlanStrategy,
};
use mjoin_hypergraph::DbScheme;
use mjoin_optimizer::{greedy, optimize, EstimateOracle, SearchSpace};
use mjoin_program::{
    display, parse_program, try_execute_with, CancelToken, ExecConfig, IndexCache, Program,
    SharedIndexCache,
};
use mjoin_relation::{tsv, AttrSet, Catalog, CostLedger, Database, Relation, Schema};
use mjoin_trace as trace;
use mjoin_wcoj::{select, wcoj_join, ExecutorKind, Selection};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How long a session blocks in one read attempt before re-checking the
/// shutdown flag. Lines are read as raw bytes (`read_until`), which keeps
/// every byte already appended when the timeout fires — `read_line` would
/// discard a partial chunk if the tick landed mid multi-byte UTF-8
/// character — so slow writers are safe even with non-ASCII payloads.
const READ_TICK: Duration = Duration::from_millis(250);

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(20);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878`. Port `0` picks a free port
    /// (read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads per request (`1` = sequential interpreter).
    pub threads: usize,
    /// Admission budget: reject any request whose certified per-statement
    /// bound exceeds this; keep the sum of in-flight certified peaks under
    /// it. `None` disables admission control and the gate.
    pub max_cost: Option<u64>,
    /// Bounded-FIFO depth for requests waiting on the capacity gate.
    pub queue_depth: usize,
    /// Shared index-cache budget in resident tuples.
    pub cache_budget_tuples: u64,
    /// Shared index-cache budget in resident bytes.
    pub cache_budget_bytes: u64,
    /// Memory admission budget in bytes: reject any `run`/`query` program
    /// whose statically certified peak-resident bytes
    /// ([`mjoin_analyze::memory_report`]) exceed this. `cq` queries are
    /// not rejected — their per-component programs instead route
    /// over-budget join build sides through the Grace-hash spill path.
    /// `None` disables both.
    pub mem_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            max_cost: None,
            queue_depth: 16,
            cache_budget_tuples: 4 << 20,
            cache_budget_bytes: 256 << 20,
            mem_budget: None,
        }
    }
}

/// A program compiled against a catalog, kept resident for reuse.
struct CompiledProgram {
    program: Program,
    scheme: DbScheme,
}

/// One named server-side catalog: interned attribute names, loaded
/// relations, compiled programs. All three share the catalog's attribute
/// ids, so relations match scheme edges by [`AttrSet`] equality.
#[derive(Default)]
struct CatalogEntry {
    catalog: Catalog,
    relations: Vec<(String, Relation)>,
    programs: HashMap<String, CompiledProgram>,
}

/// Why the capacity gate refused a request.
enum GateErr {
    /// The bounded FIFO is full.
    QueueFull,
    /// The request's deadline expired while it was queued.
    Deadline,
    /// The server is shutting down.
    ShuttingDown,
}

#[derive(Default)]
struct GateState {
    /// Sum of admitted requests' certified peak bounds.
    in_use: u64,
    /// Tickets waiting for capacity, in arrival order.
    queue: VecDeque<u64>,
    next_ticket: u64,
}

/// Capacity gate: admits requests FIFO while the sum of their certified
/// peak bounds stays within the budget. A single request whose own peak
/// exceeds the budget never reaches the gate — admission rejects it first —
/// so the head of the queue always fits once the server drains.
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    budget: Option<u64>,
    queue_depth: usize,
}

/// Releases the permit's share of the gate budget on drop, even if the
/// request panics mid-execution.
struct Permit<'a> {
    gate: &'a Gate,
    cost: u64,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        if self.cost == 0 && self.gate.budget.is_none() {
            return;
        }
        let mut st = lock(&self.gate.state);
        st.in_use = st.in_use.saturating_sub(self.cost);
        drop(st);
        self.gate.cv.notify_all();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Gate {
    fn new(budget: Option<u64>, queue_depth: usize) -> Gate {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            budget,
            queue_depth,
        }
    }

    /// Acquire capacity `cost`, waiting in FIFO order. `deadline` bounds
    /// the wait; `shutdown` aborts it.
    fn acquire(
        &self,
        cost: u64,
        deadline: Option<Instant>,
        shutdown: &AtomicBool,
    ) -> Result<Permit<'_>, GateErr> {
        let Some(budget) = self.budget else {
            return Ok(Permit {
                gate: self,
                cost: 0,
            });
        };
        let mut st = lock(&self.state);
        if st.queue.len() >= self.queue_depth {
            return Err(GateErr::QueueFull);
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        let mut waited = false;
        loop {
            if shutdown.load(Ordering::Relaxed) {
                st.queue.retain(|&t| t != ticket);
                drop(st);
                self.cv.notify_all();
                return Err(GateErr::ShuttingDown);
            }
            let at_head = st.queue.front() == Some(&ticket);
            if at_head && (st.in_use == 0 || st.in_use.saturating_add(cost) <= budget) {
                st.queue.pop_front();
                st.in_use = st.in_use.saturating_add(cost);
                drop(st);
                if waited {
                    trace::add("serve.queue_wait", 1);
                }
                return Ok(Permit { gate: self, cost });
            }
            waited = true;
            if deadline.is_some_and(|d| Instant::now() >= d) {
                st.queue.retain(|&t| t != ticket);
                drop(st);
                self.cv.notify_all();
                return Err(GateErr::Deadline);
            }
            // Short ticks so shutdown and deadlines are observed promptly
            // even when no release wakes the condvar.
            let (g, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(10))
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }
}

/// State shared by the accept loop and every session thread.
struct Shared {
    cfg: ServeConfig,
    catalogs: Mutex<HashMap<String, CatalogEntry>>,
    cache: SharedIndexCache,
    gate: Gate,
    /// Cumulative drained trace: operator counters (`index_cache.*`,
    /// `serve.*`) summed across every request the process has served.
    totals: Mutex<trace::Trace>,
    shutdown: AtomicBool,
    in_flight: AtomicU64,
    started: Instant,
}

impl Shared {
    /// Drain the process trace sink into the cumulative totals and return
    /// the current value of `name`.
    fn fold_trace(&self) -> MutexGuard<'_, trace::Trace> {
        let drained = trace::take();
        let mut totals = lock(&self.totals);
        totals.merge(drained);
        totals
    }

    fn lock_cache(&self) -> MutexGuard<'_, IndexCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Per-session §2.3 ledger: cumulative input + generated tuple counts over
/// every request the session has executed.
#[derive(Default)]
struct SessionLedger {
    requests: u64,
    inputs: u64,
    generated: u64,
}

/// The resident query server. Bind, then [`run`](Server::run) — it returns
/// after a client sends `shutdown` and all in-flight work drains.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listen socket. The server is not serving until
    /// [`run`](Server::run).
    pub fn bind(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            cache: IndexCache::shared(cfg.cache_budget_tuples, cfg.cache_budget_bytes),
            gate: Gate::new(cfg.max_cost, cfg.queue_depth),
            cfg,
            catalogs: Mutex::new(HashMap::new()),
            totals: Mutex::new(trace::Trace::default()),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            started: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until a client sends `shutdown`: accept sessions, drain
    /// in-flight requests on shutdown, park the worker pool, return.
    pub fn run(self) -> std::io::Result<()> {
        trace::set_enabled(true);
        let mut sessions = Vec::new();
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    sessions.push(std::thread::spawn(move || session(&shared, stream)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) => return Err(e),
            }
            sessions.retain(|h| !h.is_finished());
        }
        // Drain: sessions observe the flag within one read tick once their
        // in-flight request (if any) completes.
        self.shared.gate.cv.notify_all();
        for h in sessions {
            let _ = h.join();
        }
        mjoin_pool::quiesce(Duration::from_secs(5));
        Ok(())
    }
}

/// One connected client: line-in, line-out until EOF or shutdown.
fn session(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    trace::add("serve.session_open", 1);
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut ledger = SessionLedger::default();
    let mut line: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break,
            Ok(_) => {
                let complete = line.last() == Some(&b'\n');
                // Decode once, only now that the full line has arrived —
                // partial reads above never touch UTF-8 boundaries.
                let request = match std::str::from_utf8(&line) {
                    Ok(s) => s.trim_end().to_string(),
                    Err(_) => {
                        line.clear();
                        trace::add("serve.protocol_error", 1);
                        let resp = err("protocol", "request line is not valid UTF-8");
                        if writeln!(writer, "{}", resp.render())
                            .and_then(|()| writer.flush())
                            .is_err()
                            || !complete
                        {
                            break;
                        }
                        continue;
                    }
                };
                line.clear();
                if !request.is_empty() {
                    let resp = dispatch(shared, &request, &mut ledger);
                    if writeln!(writer, "{}", resp.render())
                        .and_then(|()| writer.flush())
                        .is_err()
                    {
                        break;
                    }
                }
                // `Ok(n)` without a trailing newline means EOF cut the
                // final line short; we served it, now hang up.
                if !complete {
                    break;
                }
            }
            // Timeout: every byte read so far stays appended in `line` —
            // loop to re-check the shutdown flag and keep accumulating.
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    trace::add("serve.session_close", 1);
}

/// Parse and route one request line.
fn dispatch(shared: &Shared, request_line: &str, ledger: &mut SessionLedger) -> J {
    let req = match Request::parse(request_line) {
        Ok(r) => r,
        Err(e) => {
            trace::add("serve.protocol_error", 1);
            return err("protocol", e);
        }
    };
    if shared.shutdown.load(Ordering::Relaxed) {
        return err("shutting_down", "server is draining; no new requests");
    }
    trace::add("serve.request", 1);
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    let resp = match req {
        Request::Ping => ok("ping"),
        Request::Load { catalog, name, tsv } => handle_load(shared, &catalog, name, &tsv),
        Request::Compile {
            catalog,
            name,
            program,
            scheme,
        } => handle_compile(shared, &catalog, &name, &program, scheme.as_deref()),
        Request::Run {
            catalog,
            name,
            program,
            scheme,
            deadline_ms,
            tsv,
        } => handle_run(
            shared,
            &catalog,
            name.as_deref(),
            program.as_deref(),
            scheme.as_deref(),
            deadline_ms,
            tsv,
            ledger,
        ),
        Request::Query {
            catalog,
            cq,
            optimizer,
            executor,
            minimize,
            deadline_ms,
            tsv,
        } => match cq {
            Some(cq) => handle_cq_query(
                shared,
                &catalog,
                &cq,
                optimizer.as_deref(),
                executor.as_deref(),
                minimize,
                tsv,
            ),
            None => handle_query(
                shared,
                &catalog,
                optimizer.as_deref(),
                executor.as_deref(),
                deadline_ms,
                tsv,
                ledger,
            ),
        },
        Request::Explain {
            catalog,
            name,
            program,
            cq,
            scheme,
            minimize,
        } => match cq {
            Some(cq) => handle_cq_explain(shared, &catalog, &cq, minimize),
            None => handle_explain(
                shared,
                &catalog,
                name.as_deref(),
                program.as_deref(),
                scheme.as_deref(),
            ),
        },
        Request::Stats => handle_stats(shared, ledger),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Relaxed);
            shared.gate.cv.notify_all();
            trace::add("serve.shutdown", 1);
            ok("shutdown").set(
                "draining",
                J::u64(shared.in_flight.load(Ordering::Relaxed) - 1),
            )
        }
    };
    shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    resp
}

fn handle_load(shared: &Shared, catalog: &str, name: Option<String>, text: &str) -> J {
    // Parse against a catalog *snapshot* with the lock released — a large
    // TSV payload must not stall every other session's resolve/load/
    // compile — then re-validate the interned header ids under the lock.
    let mut snapshot = {
        let mut catalogs = lock(&shared.catalogs);
        catalogs
            .entry(catalog.to_string())
            .or_default()
            .catalog
            .clone()
    };
    let parsed = match tsv::relation_from_tsv_reader(&mut snapshot, text.as_bytes()) {
        Ok(r) => r,
        Err(e) => return err("data", format!("bad TSV: {e}")),
    };
    // Pay the structural fingerprint once at load time (also outside the
    // lock): clones handed to each run inherit the memoized value, so
    // cross-session index-cache peeks don't re-hash a large resident
    // relation on every request.
    parsed.fingerprint();
    let mut catalogs = lock(&shared.catalogs);
    let entry = catalogs.entry(catalog.to_string()).or_default();
    // Fresh ids are assigned sequentially and schema attrs are sorted, so
    // replaying the header names in ascending-id order reproduces the
    // snapshot's assignments — unless a concurrent load interned other
    // attributes in between, in which case the snapshot's ids are stale
    // and the (rare) parse is redone under the lock against the live
    // catalog.
    let consistent = parsed
        .schema()
        .attrs()
        .iter()
        .all(|&id| entry.catalog.intern(snapshot.name(id)) == id);
    let rel = if consistent {
        parsed
    } else {
        match tsv::relation_from_tsv_reader(&mut entry.catalog, text.as_bytes()) {
            Ok(r) => {
                r.fingerprint();
                r
            }
            Err(e) => return err("data", format!("bad TSV: {e}")),
        }
    };
    let name = name.unwrap_or_else(|| format!("r{}", entry.relations.len()));
    if entry.relations.iter().any(|(n, _)| *n == name) {
        return err("data", format!("relation `{name}` already loaded"));
    }
    let rows = rel.len();
    let attrs = format!("{}", rel.schema().display(&entry.catalog));
    entry.relations.push((name.clone(), rel));
    trace::add("serve.load", 1);
    ok("load")
        .set("catalog", J::str(catalog))
        .set("name", J::Str(name))
        .set("rows", J::u64(rows as u64))
        .set("attrs", J::Str(attrs))
        .set("relations", J::u64(entry.relations.len() as u64))
}

/// Parse a scheme string (`"AB,BC"`) into the entry's catalog, or fall
/// back to the program text's `# scheme:` directive.
fn parse_scheme(
    catalog: &mut Catalog,
    scheme: Option<&str>,
    program_text: &str,
) -> Result<DbScheme, J> {
    let text = match scheme {
        Some(s) => s.to_string(),
        None => program_text
            .lines()
            .filter_map(|l| l.trim().strip_prefix("# scheme:"))
            .map(|s| s.trim().to_string())
            .next()
            .ok_or_else(|| {
                err(
                    "parse",
                    "program has no `# scheme: AB,BC,…` directive; pass `scheme`",
                )
            })?,
    };
    let parts: Vec<&str> = text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if parts.is_empty() {
        return Err(err("parse", format!("empty scheme `{text}`")));
    }
    Ok(DbScheme::parse(catalog, &parts))
}

fn handle_compile(
    shared: &Shared,
    catalog: &str,
    name: &str,
    text: &str,
    scheme: Option<&str>,
) -> J {
    let mut catalogs = lock(&shared.catalogs);
    let entry = catalogs.entry(catalog.to_string()).or_default();
    let scheme = match parse_scheme(&mut entry.catalog, scheme, text) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let program = match parse_program(&entry.catalog, &scheme, text) {
        Ok(p) => p,
        Err(e) => return err("parse", e.to_string()),
    };
    let statements = program.len();
    let rendered = display::render(&program, &scheme, &entry.catalog);
    let scheme_text = format!("{}", scheme.display(&entry.catalog));
    entry
        .programs
        .insert(name.to_string(), CompiledProgram { program, scheme });
    trace::add("serve.compile", 1);
    ok("compile")
        .set("catalog", J::str(catalog))
        .set("name", J::str(name))
        .set("statements", J::u64(statements as u64))
        .set("scheme", J::Str(scheme_text))
        .set("program", J::Str(rendered))
}

/// Everything a `run`/`explain` needs once the catalog lock is dropped:
/// the program, its scheme, the relations matched to the scheme's edges,
/// and a catalog snapshot for rendering.
struct Resolved {
    program: Program,
    scheme: DbScheme,
    db: Database,
    catalog: Catalog,
}

/// Look up (or inline-parse) a program and line the entry's loaded
/// relations up with its scheme edges by attribute set.
fn resolve(
    shared: &Shared,
    catalog_name: &str,
    name: Option<&str>,
    program_text: Option<&str>,
    scheme_text: Option<&str>,
) -> Result<Resolved, J> {
    let mut catalogs = lock(&shared.catalogs);
    let entry = catalogs
        .get_mut(catalog_name)
        .ok_or_else(|| err("not_found", format!("no catalog `{catalog_name}`")))?;
    let (program, scheme) = if let Some(n) = name {
        let c = entry
            .programs
            .get(n)
            .ok_or_else(|| err("not_found", format!("no compiled program `{n}`")))?;
        (c.program.clone(), c.scheme.clone())
    } else {
        let text = program_text.expect("protocol guarantees name xor program");
        let scheme = parse_scheme(&mut entry.catalog, scheme_text, text)?;
        let program = parse_program(&entry.catalog, &scheme, text)
            .map_err(|e| err("parse", e.to_string()))?;
        (program, scheme)
    };
    let db = match_relations(entry, &scheme)?;
    Ok(Resolved {
        program,
        scheme,
        db,
        catalog: entry.catalog.clone(),
    })
}

/// Match loaded relations to scheme edges by attribute set (the same rule
/// as the CLI's `load_db_for_scheme`): order-independent, every edge needs
/// exactly one relation.
fn match_relations(entry: &CatalogEntry, scheme: &DbScheme) -> Result<Database, J> {
    let mut taken = vec![false; entry.relations.len()];
    let mut relations = Vec::with_capacity(scheme.num_relations());
    for i in 0..scheme.num_relations() {
        let want = scheme.attrs_of(i);
        let found = entry.relations.iter().enumerate().find(|(j, (_, rel))| {
            !taken[*j] && AttrSet::from_iter_ids(rel.schema().attrs().iter().copied()) == *want
        });
        match found {
            Some((j, (_, rel))) => {
                taken[j] = true;
                relations.push(rel.clone());
            }
            None => {
                return Err(err(
                    "data",
                    format!(
                        "no loaded relation matches scheme edge {} ({})",
                        i,
                        Schema::from_set(want).display(&entry.catalog)
                    ),
                ))
            }
        }
    }
    Ok(Database::from_relations(relations))
}

/// Admission check: certificate + interval bounds against the resident
/// cardinalities. `Err` is the rejection response — the request never
/// reaches an operator.
fn admit(shared: &Shared, r: &Resolved) -> Result<AdmissionReport, J> {
    let cx = match AnalysisCx::new(&r.program, &r.scheme, &r.catalog) {
        Ok(cx) => cx,
        Err(e) => return Err(err("data", e.to_string())),
    };
    let seeds: Vec<u64> = r.db.relations().iter().map(|x| x.len() as u64).collect();
    let report = admission_report(&cx, &seeds);
    if let Some(budget) = shared.cfg.max_cost {
        if let Some(v) = report.violation(budget) {
            trace::add("serve.admission_reject", 1);
            let mut extra = vec![
                ("stmt".to_string(), J::u64(v.stmt as u64)),
                ("kind_of_stmt".to_string(), J::str(v.kind)),
                ("bound".to_string(), J::u64(v.bound)),
                ("budget".to_string(), J::u64(budget)),
                ("symbolic".to_string(), J::Str(v.symbolic.clone())),
            ];
            if let Some(x) = &v.excerpt {
                extra.push(("excerpt".to_string(), J::Str(x.clone())));
            }
            return Err(err_with(
                "admission",
                format!(
                    "certified bound {} for statement {} exceeds --max-cost {}",
                    v.bound, v.stmt, budget
                ),
                extra,
            ));
        }
    }
    if let Some(budget) = shared.cfg.mem_budget {
        let mem = memory_report(&cx, &seeds);
        if let Some(v) = mem.violation(budget) {
            trace::add("serve.admission_reject", 1);
            let mut extra = vec![
                ("stmt".to_string(), J::u64(v.stmt as u64)),
                ("kind_of_stmt".to_string(), J::str(v.kind)),
                ("peak_bytes".to_string(), J::u64(v.peak_bytes)),
                ("mem_budget".to_string(), J::u64(budget)),
                ("symbolic".to_string(), J::Str(v.symbolic.clone())),
            ];
            if let Some(x) = &v.excerpt {
                extra.push(("excerpt".to_string(), J::Str(x.clone())));
            }
            return Err(err_with(
                "admission",
                format!(
                    "certified memory peak {} bytes for statement {} exceeds --mem-budget {}",
                    v.peak_bytes, v.stmt, budget
                ),
                extra,
            ));
        }
    }
    Ok(report)
}

/// Acquire the capacity gate for `cost`, mapping each refusal to its
/// protocol error. Shared by the program and WCOJ execution paths.
fn acquire_permit<'a>(
    shared: &'a Shared,
    cost: u64,
    deadline: Option<Instant>,
) -> Result<Permit<'a>, J> {
    match shared.gate.acquire(cost, deadline, &shared.shutdown) {
        Ok(p) => Ok(p),
        Err(GateErr::QueueFull) => {
            trace::add("serve.queue_reject", 1);
            Err(err_with(
                "queue_full",
                "admission queue is full; retry later",
                vec![(
                    "queue_depth".to_string(),
                    J::u64(shared.cfg.queue_depth as u64),
                )],
            ))
        }
        Err(GateErr::Deadline) => {
            trace::add("serve.deadline_cancel", 1);
            Err(err(
                "deadline",
                "deadline expired while queued for capacity",
            ))
        }
        Err(GateErr::ShuttingDown) => {
            Err(err("shutting_down", "server is draining; no new requests"))
        }
    }
}

/// Gate + execute an admitted program; shared by `run` and `query`.
fn execute_admitted(
    shared: &Shared,
    r: &Resolved,
    report: &AdmissionReport,
    deadline_ms: Option<u64>,
    want_tsv: bool,
    ledger: &mut SessionLedger,
    response: J,
) -> J {
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let _permit = match acquire_permit(shared, report.peak, deadline) {
        Ok(p) => p,
        Err(e) => return e,
    };
    let cancel = match deadline {
        Some(d) => CancelToken::with_deadline(d),
        None => CancelToken::new(),
    };
    let cfg = ExecConfig {
        threads: shared.cfg.threads,
        cache: Some(Arc::clone(&shared.cache)),
        cancel: Some(cancel),
        // Admission already proved the certified peak fits the budget (a
        // build side is never larger than its statement's peak, so an
        // admitted program needs no spill plan).
        mem_budget: shared.cfg.mem_budget,
        ..ExecConfig::default()
    };
    trace::add("serve.run", 1);
    let out = match try_execute_with(&r.program, &r.db, &cfg) {
        Ok(out) => out,
        Err(c) => {
            trace::add("serve.deadline_cancel", 1);
            return err_with(
                "deadline",
                format!("{c}"),
                vec![("at_stmt".to_string(), J::u64(c.at_stmt as u64))],
            );
        }
    };
    render_outcome(
        shared,
        r,
        &out.result,
        &out.ledger,
        want_tsv,
        ledger,
        response,
    )
}

/// Gate + execute a query on the worst-case-optimal executor. The gate
/// cost is the AGM bound — the certified output bound for generic join.
/// The deadline still bounds the queue wait, but a WCOJ execution is not
/// cancellable mid-join (there is no per-statement boundary to observe a
/// token at).
fn execute_wcoj(
    shared: &Shared,
    r: &Resolved,
    gate_cost: u64,
    deadline_ms: Option<u64>,
    want_tsv: bool,
    ledger: &mut SessionLedger,
    response: J,
) -> J {
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let _permit = match acquire_permit(shared, gate_cost, deadline) {
        Ok(p) => p,
        Err(e) => return e,
    };
    trace::add("serve.run", 1);
    trace::add("serve.wcoj_run", 1);
    let result = wcoj_join(&r.scheme, &r.db, Some(&shared.cache));
    let mut cost = CostLedger::new();
    for (i, rel) in r.db.relations().iter().enumerate() {
        cost.charge_input(format!("input {i}"), rel.len());
    }
    cost.charge_generated("wcoj join", result.len());
    render_outcome(shared, r, &result, &cost, want_tsv, ledger, response)
}

/// Build the success payload for an executed request: result size (and
/// optionally the TSV), the §2.3 ledger, and warm-cache counters.
fn render_outcome(
    shared: &Shared,
    r: &Resolved,
    result: &Relation,
    cost: &CostLedger,
    want_tsv: bool,
    ledger: &mut SessionLedger,
    response: J,
) -> J {
    ledger.requests += 1;
    ledger.inputs += cost.input_total();
    ledger.generated += cost.generated_total();
    let mut resp = response
        .set("rows", J::u64(result.len() as u64))
        .set(
            "ledger",
            J::obj()
                .set("inputs", J::u64(cost.input_total()))
                .set("generated", J::u64(cost.generated_total()))
                .set("total", J::u64(cost.total()))
                .set("session_total", J::u64(ledger.inputs + ledger.generated)),
        )
        .set("cache", cache_stats(shared));
    if want_tsv {
        let mut buf = Vec::new();
        match tsv::relation_to_tsv_writer(&r.catalog, result, &mut buf) {
            Ok(()) => {
                resp = resp.set(
                    "tsv",
                    J::Str(String::from_utf8(buf).expect("TSV output is UTF-8")),
                );
            }
            Err(e) => return err("data", format!("rendering result: {e}")),
        }
    }
    resp
}

/// Warm-state snapshot: cumulative hit/miss counters plus current
/// residency of the process-wide index cache.
fn cache_stats(shared: &Shared) -> J {
    let (entries, tuples, bytes) = {
        let c = shared.lock_cache();
        (c.entries(), c.resident_tuples(), c.resident_bytes())
    };
    let totals = shared.fold_trace();
    J::obj()
        .set(
            "hit",
            J::u64(totals.counter("index_cache.hit").unwrap_or(0)),
        )
        .set(
            "miss",
            J::u64(totals.counter("index_cache.miss").unwrap_or(0)),
        )
        .set("entries", J::u64(entries as u64))
        .set("resident_tuples", J::u64(tuples))
        .set("resident_bytes", J::u64(bytes))
}

#[allow(clippy::too_many_arguments)]
fn handle_run(
    shared: &Shared,
    catalog: &str,
    name: Option<&str>,
    program: Option<&str>,
    scheme: Option<&str>,
    deadline_ms: Option<u64>,
    want_tsv: bool,
    ledger: &mut SessionLedger,
) -> J {
    let r = match resolve(shared, catalog, name, program, scheme) {
        Ok(r) => r,
        Err(e) => return e,
    };
    let report = match admit(shared, &r) {
        Ok(rep) => rep,
        Err(e) => return e,
    };
    let resp = ok("run")
        .set("catalog", J::str(catalog))
        .set("certified_peak", J::u64(report.peak));
    execute_admitted(shared, &r, &report, deadline_ms, want_tsv, ledger, resp)
}

#[allow(clippy::too_many_arguments)]
fn handle_query(
    shared: &Shared,
    catalog: &str,
    optimizer: Option<&str>,
    executor: Option<&str>,
    deadline_ms: Option<u64>,
    want_tsv: bool,
    ledger: &mut SessionLedger,
) -> J {
    let requested = match ExecutorKind::parse(executor.unwrap_or("program")) {
        Ok(k) => k,
        Err(e) => return err("protocol", e),
    };
    // Snapshot the catalog entry (relation `Arc` clones + the interner),
    // then release the lock: the tree search below can be exponential
    // (`dp` over SearchSpace::All) and must not stall every other
    // session's resolve/load/compile.
    let (db, catalog_snapshot) = {
        let catalogs = lock(&shared.catalogs);
        let entry = match catalogs.get(catalog) {
            Some(e) => e,
            None => return err("not_found", format!("no catalog `{catalog}`")),
        };
        if entry.relations.is_empty() {
            return err("data", "catalog has no loaded relations");
        }
        let db =
            Database::from_relations(entry.relations.iter().map(|(_, rel)| rel.clone()).collect());
        (db, entry.catalog.clone())
    };
    let scheme = DbScheme::from_schemas(&db.schemas());
    if !scheme.fully_connected() {
        return err(
            "data",
            "the loaded relations' scheme is disconnected; the result would be a \
             Cartesian product across components — query each component separately",
        );
    }
    // Estimation-based tree search: the exact oracle would execute the
    // very subjoins admission is about to gate.
    let mut oracle = EstimateOracle::new(&scheme, &db);
    let tree = match optimizer.unwrap_or("greedy") {
        "greedy" => greedy(&scheme, &mut oracle, true).0,
        dp @ ("dp" | "dp-cpf" | "dp-linear") => {
            let space = match dp {
                "dp" => SearchSpace::All,
                "dp-cpf" => SearchSpace::Cpf,
                _ => SearchSpace::Linear,
            };
            match optimize(&scheme, &mut oracle, space) {
                Some(opt) => opt.tree,
                None => return err("data", "optimizer search space is empty for this scheme"),
            }
        }
        other => {
            return err(
                "protocol",
                format!("unknown optimizer `{other}` (try greedy|dp|dp-cpf|dp-linear)"),
            )
        }
    };
    let d = match derive(&scheme, &tree) {
        Ok(d) => d,
        Err(e) => return err("data", e.to_string()),
    };
    let tree_text = format!("{}", tree.display(&scheme, &catalog_snapshot));
    let r = Resolved {
        program: d.program,
        scheme,
        db,
        catalog: catalog_snapshot,
    };
    // AGM bound of the whole scheme vs the derived program's Theorem-2
    // certificate — computed for every query so the response always
    // reports both sides of the executor decision.
    let sel = match selection_for(&r) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let chosen = match requested {
        ExecutorKind::Program => ExecutorKind::Program,
        ExecutorKind::Wcoj => ExecutorKind::Wcoj,
        ExecutorKind::Auto => {
            if sel.use_wcoj {
                ExecutorKind::Wcoj
            } else {
                ExecutorKind::Program
            }
        }
    };
    let resp = ok("query")
        .set("catalog", J::str(catalog))
        .set("tree", J::Str(tree_text))
        .set(
            "program",
            J::Str(display::render(&r.program, &r.scheme, &r.catalog)),
        )
        .set("executor", J::str(chosen.name()))
        .set("agm_bound", J::u64(sel.agm_bound))
        .set("cert_bound", J::u64(sel.cert_bound));
    if chosen == ExecutorKind::Wcoj {
        // Admission for generic join: its certified output bound is the
        // AGM bound, so that (not the program certificate) gates it.
        if let Some(budget) = shared.cfg.max_cost {
            if sel.agm_bound > budget {
                trace::add("serve.admission_reject", 1);
                return err_with(
                    "admission",
                    format!("AGM bound {} exceeds --max-cost {budget}", sel.agm_bound),
                    vec![
                        ("bound".to_string(), J::u64(sel.agm_bound)),
                        ("budget".to_string(), J::u64(budget)),
                    ],
                );
            }
        }
        let resp = resp.set("certified_peak", J::u64(sel.agm_bound));
        execute_wcoj(
            shared,
            &r,
            sel.agm_bound,
            deadline_ms,
            want_tsv,
            ledger,
            resp,
        )
    } else {
        let report = match admit(shared, &r) {
            Ok(rep) => rep,
            Err(e) => return e,
        };
        let resp = resp.set("certified_peak", J::u64(report.peak));
        execute_admitted(shared, &r, &report, deadline_ms, want_tsv, ledger, resp)
    }
}

/// Snapshot a catalog entry's relations into a [`NamedDatabase`] for the
/// conjunctive-query front end: each loaded relation becomes a predicate
/// under its load name, columns bound positionally in the relation's
/// canonical attribute order.
fn named_db_snapshot(shared: &Shared, catalog: &str) -> Result<NamedDatabase, J> {
    let (pairs, cat) = {
        let catalogs = lock(&shared.catalogs);
        let entry = match catalogs.get(catalog) {
            Some(e) => e,
            None => return Err(err("not_found", format!("no catalog `{catalog}`"))),
        };
        if entry.relations.is_empty() {
            return Err(err("data", "catalog has no loaded relations"));
        }
        (entry.relations.clone(), entry.catalog.clone())
    };
    let mut ndb = NamedDatabase::new();
    for (name, rel) in &pairs {
        let cols: Vec<&str> = rel.schema().attrs().iter().map(|&a| cat.name(a)).collect();
        let rows: Vec<Vec<mjoin_relation::Value>> = rel.rows().iter().map(|r| r.to_vec()).collect();
        if let Err(e) = ndb.add_relation_values(name, &cols, rows) {
            return Err(err("data", format!("relation `{name}`: {e}")));
        }
    }
    Ok(ndb)
}

/// Map a wire optimizer name onto the CQ planner's strategy.
fn plan_strategy_of(name: &str) -> Result<PlanStrategy, J> {
    Ok(match name {
        "greedy" => PlanStrategy::Greedy,
        "dp" => PlanStrategy::DpOptimal,
        "dp-cpf" => PlanStrategy::DpCpf,
        "dp-linear" => PlanStrategy::DpLinear,
        other => {
            return Err(err(
                "protocol",
                format!("unknown optimizer `{other}` (try greedy|dp|dp-cpf|dp-linear)"),
            ))
        }
    })
}

/// Render the compile-time minimization summary (or `null` when
/// minimization did not run).
fn minimize_summary_json(m: Option<&MinimizeSummary>) -> J {
    match m {
        None => J::Null,
        Some(m) => J::obj()
            .set("atoms_before", J::u64(m.atoms_before as u64))
            .set("atoms_after", J::u64(m.atoms_after as u64))
            .set(
                "dropped",
                J::Arr(m.dropped.iter().map(|d| J::Str(d.clone())).collect()),
            )
            .set("agm_before", J::u64(m.agm_before))
            .set("agm_after", J::u64(m.agm_after)),
    }
}

/// `query` with a `cq` payload: run one conjunctive query over the loaded
/// relations. The query's core is compiled unless `minimize` is false, and
/// admission gates on the AGM bound of the body that will actually run —
/// so a query rejected verbatim can be admitted once its redundant atoms
/// fold away.
fn handle_cq_query(
    shared: &Shared,
    catalog: &str,
    cq: &str,
    optimizer: Option<&str>,
    executor: Option<&str>,
    minimize: bool,
    want_tsv: bool,
) -> J {
    let requested = match ExecutorKind::parse(executor.unwrap_or("program")) {
        Ok(k) => k,
        Err(e) => return err("protocol", e),
    };
    let strategy = match plan_strategy_of(optimizer.unwrap_or("greedy")) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let q = match parse_query(cq) {
        Ok(q) => q,
        Err(e) => return err("protocol", format!("bad cq: {e}")),
    };
    let ndb = match named_db_snapshot(shared, catalog) {
        Ok(n) => n,
        Err(e) => return e,
    };
    if let Some(budget) = shared.cfg.max_cost {
        let compiled_body = if minimize {
            let m = mjoin_cq::minimize(&q);
            if m.proof.verified {
                m.core.body
            } else {
                q.body.clone()
            }
        } else {
            q.body.clone()
        };
        let bound = query_agm_bound(&ndb, &compiled_body);
        if bound > budget {
            trace::add("serve.admission_reject", 1);
            return err_with(
                "admission",
                format!("AGM bound {bound} exceeds --max-cost {budget}"),
                vec![
                    ("bound".to_string(), J::u64(bound)),
                    ("budget".to_string(), J::u64(budget)),
                ],
            );
        }
    }
    let opts = CqExecOptions {
        executor: requested,
        threads: shared.cfg.threads,
        cache: None,
        minimize,
        mem_budget: shared.cfg.mem_budget,
    };
    let (res, decisions) = match execute_query_with(&ndb, &q, strategy, &opts) {
        Ok(r) => r,
        Err(e) => return err("data", e.to_string()),
    };
    trace::add("serve.cq_query", 1);
    let components: Vec<J> = decisions
        .iter()
        .map(|d| {
            let mut o = J::obj()
                .set("component", J::Str(d.component.clone()))
                .set("executor", J::str(d.executor.name()));
            if let Some(agm) = d.agm_bound {
                o = o.set("agm_bound", J::u64(agm));
            }
            if let Some(cert) = d.cert_bound {
                o = o.set("cert_bound", J::u64(cert));
            }
            o
        })
        .collect();
    let mut resp = ok("query")
        .set("catalog", J::str(catalog))
        .set("cq", J::Str(q.to_string()))
        .set("minimize", minimize_summary_json(res.minimize.as_ref()))
        .set("components", J::Arr(components))
        .set("rows", J::u64(res.len() as u64))
        .set("cost", J::u64(res.ledger.total()));
    if want_tsv {
        let mut out = String::new();
        out.push_str(&q.head_vars.join("\t"));
        out.push('\n');
        for row in res.rows_in_head_order() {
            let cells: Vec<String> = row.iter().map(std::string::ToString::to_string).collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        resp = resp.set("tsv", J::Str(out));
    }
    resp
}

/// `explain` with a `cq` payload: the minimization report (core, dropped
/// atoms, pre/post AGM bounds) plus the query lints — no execution.
fn handle_cq_explain(shared: &Shared, catalog: &str, cq: &str, minimize: bool) -> J {
    let q = match parse_query(cq) {
        Ok(q) => q,
        Err(e) => return err("protocol", format!("bad cq: {e}")),
    };
    let ndb = match named_db_snapshot(shared, catalog) {
        Ok(n) => n,
        Err(e) => return e,
    };
    trace::add("serve.explain", 1);
    let report = mjoin_cq::lint_query(&q);
    let lints: Vec<J> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut o = J::obj()
                .set("severity", J::str(d.severity.as_str()))
                .set("lint", J::str(d.lint))
                .set("message", J::Str(d.message.clone()));
            if let Some(s) = d.stmt {
                o = o.set("stmt", J::u64(s as u64));
            }
            if let Some(x) = &d.excerpt {
                o = o.set("excerpt", J::Str(x.clone()));
            }
            o
        })
        .collect();
    let agm_before = query_agm_bound(&ndb, &q.body);
    let mut resp = ok("explain")
        .set("catalog", J::str(catalog))
        .set("cq", J::Str(q.to_string()))
        .set("lints", J::Arr(lints))
        .set("agm_bound", J::u64(agm_before));
    let mut admission_bound = agm_before;
    if minimize {
        let m = mjoin_cq::minimize(&q);
        if m.proof.verified {
            let agm_after = query_agm_bound(&ndb, &m.core.body);
            admission_bound = agm_after;
            resp = resp.set(
                "minimize",
                J::obj()
                    .set("atoms_before", J::u64(q.body.len() as u64))
                    .set("atoms_after", J::u64(m.core.body.len() as u64))
                    .set(
                        "dropped",
                        J::Arr(
                            m.proof
                                .dropped
                                .iter()
                                .map(|&i| J::Str(q.body[i].to_string()))
                                .collect(),
                        ),
                    )
                    .set("agm_before", J::u64(agm_before))
                    .set("agm_after", J::u64(agm_after))
                    .set("core", J::Str(m.core.to_string())),
            );
        }
    }
    if let Some(budget) = shared.cfg.max_cost {
        resp = resp
            .set("budget", J::u64(budget))
            .set("admitted", J::Bool(admission_bound <= budget));
    }
    resp
}

/// Compute the executor selection for a resolved query: the scheme's AGM
/// bound against the derived program's Theorem-2 certificate.
fn selection_for(r: &Resolved) -> Result<Selection, J> {
    let cx = AnalysisCx::new(&r.program, &r.scheme, &r.catalog)
        .map_err(|e| err("data", e.to_string()))?;
    let cert = Certificate::compute(&cx);
    let sizes: Vec<u64> = r.db.relations().iter().map(|x| x.len() as u64).collect();
    Ok(select(&r.scheme, &sizes, &cert))
}

fn handle_explain(
    shared: &Shared,
    catalog: &str,
    name: Option<&str>,
    program: Option<&str>,
    scheme: Option<&str>,
) -> J {
    let r = match resolve(shared, catalog, name, program, scheme) {
        Ok(r) => r,
        Err(e) => return e,
    };
    let cx = match AnalysisCx::new(&r.program, &r.scheme, &r.catalog) {
        Ok(cx) => cx,
        Err(e) => return err("data", e.to_string()),
    };
    let seeds: Vec<u64> = r.db.relations().iter().map(|x| x.len() as u64).collect();
    let report = admission_report(&cx, &seeds);
    trace::add("serve.explain", 1);
    let bounds: Vec<J> = report
        .bounds
        .iter()
        .map(|b| {
            let mut o = J::obj()
                .set("stmt", J::u64(b.stmt as u64))
                .set("kind", J::str(b.kind))
                .set("bound", J::u64(b.bound))
                .set("symbolic", J::Str(b.symbolic.clone()))
                .set("tight", J::Bool(b.tight));
            if let Some(x) = &b.excerpt {
                o = o.set("excerpt", J::Str(x.clone()));
            }
            o
        })
        .collect();
    let mut resp = ok("explain")
        .set("catalog", J::str(catalog))
        .set("bounds", J::Arr(bounds))
        .set("peak", J::u64(report.peak));
    if let Some(p) = report.peak_stmt {
        resp = resp.set("peak_stmt", J::u64(p as u64));
    }
    // Executor hint: which backend `query --executor auto` would pick for
    // this scheme and these cardinalities.
    if let Ok(sel) = selection_for(&r) {
        resp = resp
            .set("agm_bound", J::u64(sel.agm_bound))
            .set("cert_bound", J::u64(sel.cert_bound))
            .set(
                "executor_hint",
                J::str(if sel.use_wcoj { "wcoj" } else { "program" }),
            );
    }
    if let Some(budget) = shared.cfg.max_cost {
        resp = resp
            .set("budget", J::u64(budget))
            .set("admitted", J::Bool(report.violation(budget).is_none()));
    }
    // The static memory certificate: the same peak-resident bound the
    // memory admission gate and the spill planner act on.
    let mem = memory_report(&cx, &seeds);
    resp = resp
        .set("mem_peak_bytes", J::u64(mem.peak_bytes))
        .set("mem_peak_tuples", J::u64(mem.peak_tuples));
    if let Some(p) = mem.peak_stmt {
        resp = resp.set("mem_peak_stmt", J::u64(p as u64));
    }
    if let Some(budget) = shared.cfg.mem_budget {
        resp = resp
            .set("mem_budget", J::u64(budget))
            .set("mem_admitted", J::Bool(mem.violation(budget).is_none()));
    }
    resp
}

fn handle_stats(shared: &Shared, ledger: &SessionLedger) -> J {
    let cache = cache_stats(shared);
    let counters = {
        let totals = shared.fold_trace();
        let mut o = J::obj();
        for &(name, v) in &totals.counters {
            o = o.set(name, J::u64(v));
        }
        o
    };
    let catalogs: Vec<J> = {
        let map = lock(&shared.catalogs);
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        names
            .iter()
            .map(|n| {
                let e = &map[*n];
                J::obj()
                    .set("name", J::str(n.as_str()))
                    .set("relations", J::u64(e.relations.len() as u64))
                    .set("programs", J::u64(e.programs.len() as u64))
            })
            .collect()
    };
    ok("stats")
        .set(
            "uptime_ms",
            J::u64(shared.started.elapsed().as_millis() as u64),
        )
        .set(
            "in_flight",
            J::u64(shared.in_flight.load(Ordering::Relaxed)),
        )
        .set("counters", counters)
        .set("cache", cache)
        .set("catalogs", J::Arr(catalogs))
        .set(
            "session",
            J::obj()
                .set("requests", J::u64(ledger.requests))
                .set("inputs", J::u64(ledger.inputs))
                .set("generated", J::u64(ledger.generated)),
        )
}
