//! The wire protocol: one JSON object per line, each way.
//!
//! Every request carries a `"cmd"` field; every response is an object with
//! `"ok": true` plus command-specific fields, or `"ok": false` with an
//! `"error"` object carrying a machine-readable `"kind"`, a human
//! `"message"`, and — for admission rejections — the offending statement
//! index, its certified numeric bound, the budget, and the certificate's
//! symbolic bound (see `mjoin_analyze::admission`).
//!
//! Commands:
//!
//! | cmd        | fields                                               | effect |
//! |------------|------------------------------------------------------|--------|
//! | `ping`     |                                                      | liveness check |
//! | `load`     | `catalog`, `tsv`, opt. `name`                        | add a TSV relation to a named server-side catalog |
//! | `compile`  | `catalog`, `name`, `program`, opt. `scheme`          | parse + validate a §2.2 program against the catalog |
//! | `run`      | `catalog`, `name` or `program` (+opt. `scheme`), opt. `deadline_ms`, opt. `tsv` | admission-gate, execute, return result |
//! | `query`    | `catalog`, opt. `cq`, opt. `optimizer`, opt. `executor`, opt. `minimize`, opt. `deadline_ms`, opt. `tsv` | derive a program for all loaded relations (Alg. 1+2) and run it — `executor` picks `program` (default), `wcoj`, or `auto` (AGM vs certificate). With `cq`, run that conjunctive query over the loaded relations instead; its core is compiled (`minimize: false` opts out) and the response reports atoms dropped plus pre/post AGM bounds |
//! | `explain`  | `catalog`, `name` or `program` or `cq` (+opt. `scheme`) | admission report without executing; with `cq`, the minimization report (core, dropped atoms, pre/post AGM bounds) plus query lints |
//! | `stats`    |                                                      | cumulative counters, cache residency, catalogs |
//! | `shutdown` |                                                      | drain in-flight requests and stop the server |

use crate::json::Value;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Add a TSV relation to catalog `catalog`.
    Load {
        /// Server-side catalog name.
        catalog: String,
        /// Optional display name for the relation.
        name: Option<String>,
        /// The relation as TSV text (header + rows).
        tsv: String,
    },
    /// Parse and validate a program, storing it under `name`.
    Compile {
        /// Server-side catalog name.
        catalog: String,
        /// Name to store the compiled program under.
        name: String,
        /// Program text in paper notation.
        program: String,
        /// Database scheme (`"AB,BC"`); defaults to the program's
        /// `# scheme:` directive.
        scheme: Option<String>,
    },
    /// Execute a compiled (`name`) or inline (`program`) program.
    Run {
        /// Server-side catalog name.
        catalog: String,
        /// Name of a previously compiled program.
        name: Option<String>,
        /// Inline program text (alternative to `name`).
        program: Option<String>,
        /// Scheme for an inline program.
        scheme: Option<String>,
        /// Per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Whether to include the result TSV (default true).
        tsv: bool,
    },
    /// Derive (Algorithm 1 + 2) and run a program joining every relation
    /// loaded in the catalog.
    Query {
        /// Server-side catalog name.
        catalog: String,
        /// A conjunctive query (`Q(x, z) :- r(x, y), s(y, z)`) over the
        /// loaded relations (by name, columns bound positionally). When
        /// absent, the full natural join of every loaded relation runs.
        cq: Option<String>,
        /// Join-tree search: `greedy` (default), `dp`, `dp-cpf`, `dp-linear`.
        optimizer: Option<String>,
        /// Join executor: `program` (default), `wcoj`, or `auto` (pick by
        /// AGM bound vs the derived program's Theorem-2 certificate).
        executor: Option<String>,
        /// (`cq` only) compile the query's core (Chandra–Merlin
        /// minimization) instead of the literal body. Default true.
        minimize: bool,
        /// Per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Whether to include the result TSV (default true).
        tsv: bool,
    },
    /// Admission report for a program — or, with `cq`, the minimization
    /// and lint report for a conjunctive query — without executing.
    Explain {
        /// Server-side catalog name.
        catalog: String,
        /// Name of a previously compiled program.
        name: Option<String>,
        /// Inline program text (alternative to `name`).
        program: Option<String>,
        /// A conjunctive query to analyze (alternative to `name`/`program`).
        cq: Option<String>,
        /// Scheme for an inline program.
        scheme: Option<String>,
        /// (`cq` only) report the minimized core. Default true.
        minimize: bool,
    },
    /// Cumulative server counters and cache stats.
    Stats,
    /// Graceful shutdown: drain in-flight requests, park the pool, exit.
    Shutdown,
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn opt_str(v: &Value, key: &str) -> Option<String> {
    v.get(key).and_then(Value::as_str).map(str::to_string)
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line)?;
        let cmd = req_str(&v, "cmd")?;
        match cmd.as_str() {
            "ping" => Ok(Request::Ping),
            "load" => Ok(Request::Load {
                catalog: req_str(&v, "catalog")?,
                name: opt_str(&v, "name"),
                tsv: req_str(&v, "tsv")?,
            }),
            "compile" => Ok(Request::Compile {
                catalog: req_str(&v, "catalog")?,
                name: req_str(&v, "name")?,
                program: req_str(&v, "program")?,
                scheme: opt_str(&v, "scheme"),
            }),
            "run" => {
                let name = opt_str(&v, "name");
                let program = opt_str(&v, "program");
                if name.is_none() == program.is_none() {
                    return Err("run takes exactly one of `name` or `program`".to_string());
                }
                Ok(Request::Run {
                    catalog: req_str(&v, "catalog")?,
                    name,
                    program,
                    scheme: opt_str(&v, "scheme"),
                    deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
                    tsv: v.get("tsv").and_then(Value::as_bool).unwrap_or(true),
                })
            }
            "query" => Ok(Request::Query {
                catalog: req_str(&v, "catalog")?,
                cq: opt_str(&v, "cq"),
                optimizer: opt_str(&v, "optimizer"),
                executor: opt_str(&v, "executor"),
                minimize: v.get("minimize").and_then(Value::as_bool).unwrap_or(true),
                deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
                tsv: v.get("tsv").and_then(Value::as_bool).unwrap_or(true),
            }),
            "explain" => {
                let name = opt_str(&v, "name");
                let program = opt_str(&v, "program");
                let cq = opt_str(&v, "cq");
                let given = [&name, &program, &cq]
                    .iter()
                    .filter(|o| o.is_some())
                    .count();
                if given != 1 {
                    return Err(
                        "explain takes exactly one of `name`, `program`, or `cq`".to_string()
                    );
                }
                Ok(Request::Explain {
                    catalog: req_str(&v, "catalog")?,
                    name,
                    program,
                    cq,
                    scheme: opt_str(&v, "scheme"),
                    minimize: v.get("minimize").and_then(Value::as_bool).unwrap_or(true),
                })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd `{other}`")),
        }
    }
}

/// Build an `ok` response skeleton for `cmd`.
pub fn ok(cmd: &str) -> Value {
    Value::obj()
        .set("ok", Value::Bool(true))
        .set("cmd", Value::str(cmd))
}

/// Build an error response of the given kind.
pub fn err(kind: &str, message: impl Into<String>) -> Value {
    Value::obj().set("ok", Value::Bool(false)).set(
        "error",
        Value::obj()
            .set("kind", Value::str(kind))
            .set("message", Value::Str(message.into())),
    )
}

/// Attach extra fields to an error response's `error` object.
pub fn err_with(kind: &str, message: impl Into<String>, extra: Vec<(String, Value)>) -> Value {
    let mut e = Value::obj()
        .set("kind", Value::str(kind))
        .set("message", Value::Str(message.into()));
    for (k, v) in extra {
        e = e.set(&k, v);
    }
    Value::obj().set("ok", Value::Bool(false)).set("error", e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands() {
        assert_eq!(Request::parse("{\"cmd\":\"ping\"}").unwrap(), Request::Ping);
        let r = Request::parse(
            "{\"cmd\":\"run\",\"catalog\":\"c\",\"name\":\"q\",\"deadline_ms\":100}",
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Run {
                catalog: "c".into(),
                name: Some("q".into()),
                program: None,
                scheme: None,
                deadline_ms: Some(100),
                tsv: true,
            }
        );
        assert!(Request::parse("{\"cmd\":\"run\",\"catalog\":\"c\"}").is_err());
        assert!(Request::parse(
            "{\"cmd\":\"run\",\"catalog\":\"c\",\"name\":\"q\",\"program\":\"x\"}"
        )
        .is_err());
        assert!(Request::parse("{\"cmd\":\"nope\"}").is_err());
        assert!(Request::parse("not json").is_err());
    }

    #[test]
    fn error_payloads_carry_kind() {
        let e = err("admission", "too expensive");
        assert_eq!(e.get("ok").and_then(Value::as_bool), Some(false));
        let kind = e
            .get("error")
            .and_then(|er| er.get("kind"))
            .and_then(Value::as_str);
        assert_eq!(kind, Some("admission"));
    }
}
