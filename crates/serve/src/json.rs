//! A minimal JSON value type for the line-oriented wire protocol.
//!
//! The workspace is `std`-only (no registry access), so the protocol
//! carries exactly the JSON subset it needs: null, booleans, integers
//! (`i128`, large enough for every `u64` counter), strings, arrays, and
//! objects with insertion-ordered keys. Floats are rejected on parse —
//! every quantity in the protocol is a count, and refusing floats keeps
//! responses byte-deterministic.

use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order (responses render in a
/// stable field order, which the differential tests rely on).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (the protocol carries no floats).
    Int(i128),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// An unsigned counter as an integer value.
    pub fn u64(n: u64) -> Value {
        Value::Int(i128::from(n))
    }

    /// An empty object to be filled with [`Value::set`].
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Insert (or replace) `key` in an object; panics on non-objects —
    /// the builders in this crate only call it on [`Value::obj`].
    pub fn set(mut self, key: &str, v: Value) -> Value {
        let Value::Obj(pairs) = &mut self else {
            panic!("Value::set on a non-object");
        };
        if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
            slot.1 = v;
        } else {
            pairs.push((key.to_string(), v));
        }
        self
    }

    /// Object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|n| u64::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON (no whitespace), suitable for one wire line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => escape_into(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse one JSON value from `text`, requiring nothing but whitespace
    /// after it.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Render a JSON string literal via the workspace-shared escaper (also used
/// by the analyzer's diagnostic reports, so escaping rules cannot drift).
fn escape_into(s: &str, out: &mut String) {
    mjoin_relation::json::string_into(s, out);
}

/// Nesting depth cap: a hostile client cannot overflow the parser stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    pairs.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "floats are not part of the protocol (byte {})",
                self.pos
            ));
        }
        // JSON numbers are canonical: no leading zeros (`007`). The sign is
        // handled above, so `i128::parse`'s laxer grammar never leaks in.
        if self.pos - digits > 1 && self.bytes[digits] == b'0' {
            return Err(format!("leading zero in number (byte {digits})"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are UTF-8");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".to_string());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let cp = parse_hex4(hex)?;
                            self.pos += 4;
                            // Surrogate pair: \uD800-\uDBFF must be followed
                            // by a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| "truncated surrogate".to_string())?;
                                let lo = parse_hex4(hex2)?;
                                self.pos += 4;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| "bad surrogate pair".to_string())?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("bad codepoint \\u{hex}"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", char::from(other)));
                        }
                    }
                }
                _ => {
                    // Consume the longest run of plain bytes in one go —
                    // validating UTF-8 per run, not per character (a
                    // megabyte TSV payload would otherwise make this
                    // quadratic). `"` and `\` are ASCII, so splitting at
                    // them never lands inside a multi-byte scalar.
                    let end = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\')
                        .unwrap_or(rest.len());
                    let run = std::str::from_utf8(&rest[..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(run);
                    self.pos += end;
                }
            }
        }
    }
}

/// Parse exactly four ASCII hex digits (a `\u` escape's payload).
/// `u32::from_str_radix` alone is too lax — it accepts a leading `+`, so
/// `\u+041` would silently parse as U+0041.
fn parse_hex4(hex: &str) -> Result<u32, String> {
    if hex.len() == 4 && hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        Ok(u32::from_str_radix(hex, 16).expect("four hex digits"))
    } else {
        Err(format!("bad \\u escape `{hex}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::obj()
            .set("ok", Value::Bool(true))
            .set("n", Value::Int(-42))
            .set("s", Value::str("tab\there \"q\" \\ nl\n"))
            .set(
                "arr",
                Value::Arr(vec![Value::Null, Value::u64(u64::MAX), Value::str("")]),
            );
        let text = v.render();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_floats_and_garbage() {
        assert!(Value::parse("1.5").is_err());
        assert!(Value::parse("1e3").is_err());
        assert!(Value::parse("{\"a\":1} x").is_err());
        assert!(Value::parse("\"unterminated").is_err());
        assert!(Value::parse("[1,]").is_err());
        // Depth bomb bounces instead of blowing the stack.
        let bomb = "[".repeat(100_000);
        assert!(Value::parse(&bomb).is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Value::parse("\"\\u0041\\u00e9\"").unwrap(),
            Value::str("Aé")
        );
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::str("😀")
        );
        assert!(Value::parse("\"\\ud83d\"").is_err());
        // Control characters render as \u escapes and round-trip.
        let v = Value::str("\u{1}\u{7f}");
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }

    /// Regression: `u32::from_str_radix` accepts a leading `+` and
    /// `i128::parse` accepts leading zeros — neither is JSON.
    #[test]
    fn rejects_non_canonical_escapes_and_numbers() {
        assert!(Value::parse("\"\\u+041\"").is_err());
        assert!(Value::parse("\"\\u00 1\"").is_err());
        assert!(Value::parse("\"\\ud83d\\u+e00\"").is_err());
        assert!(Value::parse("007").is_err());
        assert!(Value::parse("-01").is_err());
        assert!(Value::parse("+7").is_err());
        // Canonical forms still parse.
        assert_eq!(Value::parse("0").unwrap(), Value::Int(0));
        assert_eq!(Value::parse("-0").unwrap(), Value::Int(0));
        assert_eq!(Value::parse("10").unwrap(), Value::Int(10));
    }

    #[test]
    fn object_access() {
        let v = Value::parse("{\"cmd\":\"run\",\"deadline_ms\":250}").unwrap();
        assert_eq!(v.get("cmd").and_then(Value::as_str), Some("run"));
        assert_eq!(v.get("deadline_ms").and_then(Value::as_u64), Some(250));
        assert!(v.get("missing").is_none());
    }
}
