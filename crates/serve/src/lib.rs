//! `mjoin-serve` — a resident query server for the paper's programs.
//!
//! The one-shot CLI pays the whole pipeline on every invocation: load the
//! TSVs, intern the catalog, derive the program, build every join index
//! from scratch. A resident server keeps all of that warm: named catalogs
//! of loaded relations and compiled programs live in the process, and one
//! process-wide [`mjoin_program::SharedIndexCache`] carries build-side
//! join indices across requests *and sessions*.
//!
//! The transport is deliberately boring — TCP, one JSON object per line
//! each way ([`protocol`]), parsed by a dependency-free recursive-descent
//! parser ([`json`]). See [`protocol`] for the command table.
//!
//! The paper connection is admission control: because every compiled
//! program carries a Theorem-2 cost certificate, the server can evaluate
//! the certified per-statement bounds against the resident catalog's
//! cardinalities *before* running anything
//! ([`mjoin_analyze::admission_report`]). A request whose certified bound
//! exceeds the configured budget is rejected with the offending statement
//! and its bound — a Cartesian-product program (the paper's anti-pattern)
//! never reaches an operator. Admitted requests pass a bounded-FIFO
//! capacity gate keeping the sum of in-flight certified peaks under the
//! same budget.

#![warn(missing_docs)]

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use json::Value;
pub use protocol::Request;
pub use server::{ServeConfig, Server};
