//! A minimal blocking client for the line-oriented protocol: one JSON
//! object out, one JSON object back, over a plain `TcpStream`.

use crate::json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a running [`crate::Server`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Send one request object and read its response object.
    pub fn request(&mut self, req: &Value) -> std::io::Result<Value> {
        self.request_line(&req.render())
    }

    /// Send one raw request line and parse the response.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<Value> {
        debug_assert!(!line.contains('\n'), "requests are single lines");
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(bad_data("server closed the connection".to_string()));
        }
        Value::parse(resp.trim_end()).map_err(|e| bad_data(format!("bad response: {e}")))
    }

    /// Convenience: build and send a `{"cmd": …}` request from key/value
    /// pairs.
    pub fn cmd(&mut self, cmd: &str, fields: &[(&str, Value)]) -> std::io::Result<Value> {
        let mut req = Value::obj().set("cmd", Value::str(cmd));
        for (k, v) in fields {
            req = req.set(k, v.clone());
        }
        self.request(&req)
    }
}
