//! Differential property tests: the three join implementations (hash,
//! sort-merge, partitioned parallel) must agree on arbitrary inputs, and all
//! must satisfy the algebraic size bounds.

use mjoin_relation::{ops, Catalog, Relation, Schema, Value};
use proptest::prelude::*;

fn rel(c: &mut Catalog, scheme: &str, rows: &[Vec<i64>]) -> Relation {
    let schema = Schema::from_chars(c, scheme);
    Relation::from_tuples(
        schema,
        rows.iter()
            .map(|r| r.iter().map(|&v| Value::Int(v)).collect())
            .collect(),
    )
    .unwrap()
}

fn rows(arity: usize, max: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..6i64, arity), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn three_joins_agree_with_shared_attr(ra in rows(2, 40), rb in rows(2, 40)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        let hash = ops::join(&r, &s);
        prop_assert_eq!(&ops::merge_join(&r, &s), &hash);
        for threads in [2usize, 4] {
            prop_assert_eq!(&ops::par_join(&r, &s, threads), &hash);
        }
    }

    #[test]
    fn three_joins_agree_on_cartesian(ra in rows(1, 20), rb in rows(1, 20)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "A", &ra);
        let s = rel(&mut c, "B", &rb);
        let hash = ops::join(&r, &s);
        prop_assert_eq!(hash.len(), r.len() * s.len());
        prop_assert_eq!(&ops::merge_join(&r, &s), &hash);
        prop_assert_eq!(&ops::par_join(&r, &s, 3), &hash);
    }

    #[test]
    fn three_joins_agree_multi_key(ra in rows(3, 30), rb in rows(3, 30)) {
        // ABC ⋈ BCD: two shared attributes.
        let mut c = Catalog::new();
        let r = rel(&mut c, "ABC", &ra);
        let s = rel(&mut c, "BCD", &rb);
        let hash = ops::join(&r, &s);
        prop_assert_eq!(&ops::merge_join(&r, &s), &hash);
        prop_assert_eq!(&ops::par_join(&r, &s, 4), &hash);
    }

    #[test]
    fn join_projection_recovery(ra in rows(2, 30), rb in rows(2, 30)) {
        // π_{AB}(R ⋈ S) ⊆ R, with equality exactly on R ⋉ S.
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        let j = ops::merge_join(&r, &s);
        let back = ops::project(&j, r.schema().attrs()).unwrap();
        prop_assert_eq!(back, ops::semijoin(&r, &s));
    }
}
