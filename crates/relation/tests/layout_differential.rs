//! Differential suite for the two physical layouts: every operator must
//! produce identical relations from the row engine and the columnar engine,
//! on random relations (integers, strings, and mixed columns), sequentially
//! and at 2/4/8 threads.
//!
//! The layout switch is process-global, so every test serializes on one
//! mutex and restores the previous layout before releasing it.

use mjoin_relation::ops::{self, Layout};
use mjoin_relation::{Catalog, Relation, Row, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex, OnceLock};

fn layout_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Run `f` under the row engine, then under the columnar engine, and return
/// both results. The previous layout is restored before returning.
fn both<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = layout_lock().lock().unwrap();
    let before = ops::layout();
    ops::set_layout(Layout::Row);
    let by_rows = f();
    ops::set_layout(Layout::Columnar);
    let by_cols = f();
    ops::set_layout(before);
    (by_rows, by_cols)
}

/// A random relation over single-letter attributes. `string_cols` marks the
/// positions (in written order) whose values are strings drawn from a small
/// alphabet; everything else is a small integer, so joins and dedup both
/// fire often.
fn random_rel(
    c: &mut Catalog,
    scheme: &str,
    rows: usize,
    fanout: i64,
    string_cols: &[usize],
    rng: &mut StdRng,
) -> Relation {
    let ids = c.intern_chars(scheme);
    let schema = Schema::new(ids.clone());
    let dest: Vec<usize> = ids
        .iter()
        .map(|&id| schema.position(id).expect("interned"))
        .collect();
    let mut out: Vec<Row> = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mut row = vec![Value::Int(0); ids.len()];
        for (i, &d) in dest.iter().enumerate() {
            let v = rng.gen_range(0..fanout);
            row[d] = if string_cols.contains(&i) {
                Value::str(format!("s{v}"))
            } else {
                Value::Int(v)
            };
        }
        out.push(row.into());
    }
    Relation::from_rows(schema, out).unwrap()
}

const THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn joins_agree_across_layouts() {
    let mut rng = StdRng::seed_from_u64(0x10);
    for seed in 0..6u64 {
        let mut c = Catalog::new();
        let strings: &[usize] = if seed % 2 == 0 { &[1] } else { &[] };
        let r = random_rel(&mut c, "AB", 700, 40, strings, &mut rng);
        let s = random_rel(&mut c, "BC", 600, 40, strings, &mut rng);
        let (row_seq, col_seq) = both(|| ops::join(&r, &s));
        assert_eq!(row_seq, col_seq, "sequential join, seed {seed}");
        for threads in THREADS {
            let (by_rows, by_cols) = both(|| ops::par_join_cutoff(&r, &s, threads, 0));
            assert_eq!(by_rows, by_cols, "par_join t={threads}, seed {seed}");
            assert_eq!(by_cols, col_seq, "par vs seq t={threads}, seed {seed}");
        }
    }
}

#[test]
fn cartesian_and_multikey_joins_agree() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut c = Catalog::new();
    let a = random_rel(&mut c, "A", 90, 60, &[], &mut rng);
    let b = random_rel(&mut c, "B", 80, 60, &[0], &mut rng);
    let (by_rows, by_cols) = both(|| ops::join(&a, &b));
    assert_eq!(by_rows, by_cols);
    assert_eq!(by_cols.len(), a.len() * b.len());

    let l = random_rel(&mut c, "ABX", 800, 12, &[1], &mut rng);
    let r = random_rel(&mut c, "ABY", 700, 12, &[1], &mut rng);
    for threads in THREADS {
        let (by_rows, by_cols) = both(|| ops::par_join_cutoff(&l, &r, threads, 0));
        assert_eq!(by_rows, by_cols, "multi-key t={threads}");
    }
}

#[test]
fn semijoins_agree_across_layouts() {
    let mut rng = StdRng::seed_from_u64(11);
    for seed in 0..4u64 {
        let mut c = Catalog::new();
        let strings: &[usize] = if seed % 2 == 0 { &[0] } else { &[] };
        let l = random_rel(&mut c, "AB", 900, 35, &[], &mut rng);
        let r = random_rel(&mut c, "BC", 500, 35, strings, &mut rng);
        let (row_seq, col_seq) = both(|| ops::semijoin(&l, &r));
        assert_eq!(row_seq, col_seq, "sequential semijoin, seed {seed}");
        for threads in THREADS {
            let (by_rows, by_cols) = both(|| ops::par_semijoin_cutoff(&l, &r, threads, 0));
            assert_eq!(by_rows, by_cols, "par_semijoin t={threads}, seed {seed}");
            assert_eq!(by_cols, col_seq);
        }
        // Disjoint-schema degenerate cases.
        let d = random_rel(&mut c, "XY", 50, 10, &[], &mut rng);
        let (by_rows, by_cols) = both(|| ops::semijoin(&l, &d));
        assert_eq!(by_rows, by_cols);
        let empty = Relation::empty(d.schema().clone());
        let (by_rows, by_cols) = both(|| ops::semijoin(&l, &empty));
        assert_eq!(by_rows, by_cols);
    }
}

#[test]
fn projections_agree_across_layouts() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut c = Catalog::new();
    let r = random_rel(&mut c, "ABC", 1500, 9, &[2], &mut rng);
    let a = c.lookup("A").unwrap();
    let b = c.lookup("B").unwrap();
    let cc = c.lookup("C").unwrap();
    for attrs in [vec![a], vec![b], vec![a, cc], vec![cc, b], vec![]] {
        let (row_seq, col_seq) = both(|| ops::project(&r, &attrs).unwrap());
        assert_eq!(row_seq, col_seq, "sequential project {attrs:?}");
        for threads in THREADS {
            let (by_rows, by_cols) =
                both(|| ops::par_project_cutoff(&r, &attrs, threads, 0).unwrap());
            assert_eq!(by_rows, by_cols, "par_project t={threads} {attrs:?}");
            assert_eq!(by_cols, col_seq);
        }
    }
}

#[test]
fn select_setops_rename_agree_across_layouts() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut c = Catalog::new();
    let r = random_rel(&mut c, "AB", 600, 8, &[1], &mut rng);
    let s = random_rel(&mut c, "AB", 500, 8, &[1], &mut rng);
    let a = c.lookup("A").unwrap();
    let b = c.lookup("B").unwrap();

    let (by_rows, by_cols) = both(|| ops::select_eq(&r, a, &Value::Int(3)).unwrap());
    assert_eq!(by_rows, by_cols, "select_eq int");
    let (by_rows, by_cols) = both(|| ops::select_eq(&r, b, &Value::str("s5")).unwrap());
    assert_eq!(by_rows, by_cols, "select_eq str");
    let (by_rows, by_cols) = both(|| {
        ops::select_where(&r, |row| {
            row[0].as_int().unwrap() % 2 == 0 && row[1] != Value::str("s0")
        })
    });
    assert_eq!(by_rows, by_cols, "select_where");

    let (by_rows, by_cols) = both(|| ops::union(&r, &s).unwrap());
    assert_eq!(by_rows, by_cols, "union");
    let (by_rows, by_cols) = both(|| ops::difference(&r, &s).unwrap());
    assert_eq!(by_rows, by_cols, "difference");
    let (by_rows, by_cols) = both(|| ops::intersection(&r, &s).unwrap());
    assert_eq!(by_rows, by_cols, "intersection");

    let z = c.intern("Z");
    let (by_rows, by_cols) = both(|| ops::rename(&r, &[(a, z)]).unwrap());
    assert_eq!(by_rows, by_cols, "rename");
    // A rename that reorders columns, then a join against the original.
    let (by_rows, by_cols) = both(|| {
        let shifted = ops::rename(&r, &[(a, b), (b, z)]).unwrap();
        ops::join(&r, &shifted)
    });
    assert_eq!(by_rows, by_cols, "self-join via rename");
}

#[test]
fn indexed_paths_agree_across_layouts() {
    let mut rng = StdRng::seed_from_u64(47);
    let mut c = Catalog::new();
    let l = random_rel(&mut c, "AB", 900, 45, &[0], &mut rng);
    let r = random_rel(&mut c, "BC", 700, 45, &[1], &mut rng);
    let key_l = ops::join_key_positions(l.schema(), r.schema()).0;
    let key_r = ops::join_key_positions(r.schema(), l.schema()).0;
    for threads in THREADS {
        let (by_rows, by_cols) = both(|| {
            let idx = ops::JoinIndex::build(Arc::new(l.clone()), key_l.clone());
            ops::par_join_indexed_cutoff(&idx, &r, threads, 0)
        });
        assert_eq!(by_rows, by_cols, "indexed join t={threads}");
        let (by_rows, by_cols) = both(|| {
            let idx = ops::JoinIndex::build(Arc::new(r.clone()), key_r.clone());
            ops::par_semijoin_indexed_cutoff(&l, &idx, threads, 0)
        });
        assert_eq!(by_rows, by_cols, "indexed semijoin t={threads}");
    }
    // Cross-layout interop: an index built by the row engine, probed by the
    // columnar engine (and vice versa) — the hashes are bit-identical.
    let _guard = layout_lock().lock().unwrap();
    let before = ops::layout();
    ops::set_layout(Layout::Row);
    let row_built = ops::JoinIndex::build(Arc::new(l.clone()), key_l.clone());
    ops::set_layout(Layout::Columnar);
    let col_probe = ops::par_join_indexed_cutoff(&row_built, &r, 4, 0);
    let col_built = ops::JoinIndex::build(Arc::new(l.clone()), key_l.clone());
    ops::set_layout(Layout::Row);
    let row_probe = ops::par_join_indexed_cutoff(&col_built, &r, 4, 0);
    ops::set_layout(before);
    assert_eq!(col_probe, row_probe, "cross-layout index interop");
}
