//! Regression test for the racy lazy initialization of the process-wide
//! tuning knobs (`par_cutoff`, `layout`).
//!
//! The original implementation seeded the knob from the environment with a
//! check-then-store on a relaxed atomic: a first reader could load the
//! "uninitialized" sentinel, get preempted, and store the env-derived
//! default *after* a concurrent `set_par_cutoff`/`set_layout` override —
//! silently clobbering it. A resident server hits this on its very first
//! concurrent sessions. The fix seeds the env default through a `OnceLock`
//! and keeps runtime overrides in an atomic that readers never store to,
//! making the clobber impossible by construction; this test hammers the
//! old interleaving to keep it that way.

use mjoin_relation::ops::{layout, par_cutoff, set_layout, set_par_cutoff, Layout};
use std::sync::{Arc, Barrier};
use std::thread;

#[test]
fn overrides_survive_racing_first_readers() {
    // Remember the effective values so the process-global knobs are left
    // as we found them (other tests in this binary would observe them).
    let prev_cutoff = par_cutoff();
    let prev_layout = layout();

    const ROUNDS: usize = 200;
    const READERS: usize = 4;
    for round in 0..ROUNDS {
        let want = 100 + round; // distinct per round, never the default
        let barrier = Arc::new(Barrier::new(READERS + 1));
        thread::scope(|s| {
            for _ in 0..READERS {
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    barrier.wait();
                    // Under the old code a reader here could store the env
                    // default over a concurrent override.
                    let _ = par_cutoff();
                    let _ = layout();
                });
            }
            barrier.wait();
            set_par_cutoff(want);
            set_layout(Layout::Row);
        });
        // Once every reader has joined, the override must still be in
        // effect: readers must never write the knob.
        assert_eq!(
            par_cutoff(),
            want,
            "round {round}: racing first readers clobbered set_par_cutoff"
        );
        assert_eq!(
            layout(),
            Layout::Row,
            "round {round}: racing first readers clobbered set_layout"
        );
    }

    set_par_cutoff(prev_cutoff);
    set_layout(prev_layout);
}
