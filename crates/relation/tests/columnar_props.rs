//! Property tests for the columnar storage layer: the row view and the
//! column view of a relation are two encodings of the same set of tuples,
//! and every derivation between them round-trips exactly.

use mjoin_relation::{Catalog, Relation, Schema, Value};
use proptest::prelude::*;

/// A strategy for rows mixing integers and short strings (strings share a
/// small alphabet so dictionaries see repeated codes, and `"7"`-style
/// numeric strings exercise the Int-vs-Str distinction).
fn cell() -> impl Strategy<Value = Value> {
    (0u8..4, -4i64..10).prop_map(|(kind, v)| match kind {
        0 | 1 => Value::Int(v),
        2 => Value::str(format!("v{}", v.rem_euclid(5))),
        _ => Value::str(v.rem_euclid(4).to_string()),
    })
}

fn rows(arity: usize, max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(cell(), arity), 0..max)
}

fn rel_of(c: &mut Catalog, scheme: &str, tuples: Vec<Vec<Value>>) -> Relation {
    let schema = Schema::from_chars(c, scheme);
    Relation::from_tuples(schema, tuples).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rows → Relation → columns → rows: reading every cell back out of the
    /// column vectors reproduces the row view exactly, in row order.
    #[test]
    fn row_view_and_column_view_agree(tuples in rows(3, 40)) {
        let mut c = Catalog::new();
        let r = rel_of(&mut c, "ABC", tuples);
        let cols = r.columns();
        prop_assert_eq!(cols.len(), 3);
        for col in cols {
            prop_assert_eq!(col.len(), r.len());
        }
        for (i, row) in r.rows().iter().enumerate() {
            for (p, cell) in row.iter().enumerate() {
                prop_assert_eq!(&cols[p].value(i), cell, "row {} col {}", i, p);
            }
        }
    }

    /// The opposite derivation: a relation whose *columns* are primary (a
    /// columnar select output) materializes a row view equal to the source's.
    #[test]
    fn column_born_relation_rematerializes_rows(tuples in rows(2, 40)) {
        let mut c = Catalog::new();
        let r = rel_of(&mut c, "AB", tuples);
        // select_where(true) under the columnar engine late-materializes
        // from column gathers — its result relation is column-born.
        let before = mjoin_relation::ops::layout();
        mjoin_relation::ops::set_layout(mjoin_relation::ops::Layout::Columnar);
        let copy = mjoin_relation::ops::select_where(&r, |_| true);
        mjoin_relation::ops::set_layout(before);
        prop_assert_eq!(&copy, &r);
        // Forcing the copy's row view agrees with the original's, as sets.
        prop_assert_eq!(copy.sorted_rows(), r.sorted_rows());
    }

    /// The structural fingerprint is a function of the tuple set alone —
    /// not of which view happens to be resident.
    #[test]
    fn fingerprint_ignores_layout(tuples in rows(2, 30)) {
        let mut c = Catalog::new();
        let r = rel_of(&mut c, "AB", tuples.clone());
        let s = rel_of(&mut c, "AB", tuples);
        // r: hash from the row view. s: force columns first, so its
        // fingerprint folds over column slices.
        let _ = s.columns();
        prop_assert_eq!(r.fingerprint(), s.fingerprint());
        prop_assert_eq!(r, s);
    }

    /// Dictionary sharing: gathering a subset of an interned column (via a
    /// columnar selection) never re-interns — resident bytes of the subset
    /// stay bounded by codes plus the shared pool.
    #[test]
    fn subset_shares_dictionary(tuples in rows(2, 40)) {
        let mut c = Catalog::new();
        let r = rel_of(&mut c, "AB", tuples);
        let before = mjoin_relation::ops::layout();
        mjoin_relation::ops::set_layout(mjoin_relation::ops::Layout::Columnar);
        let half = mjoin_relation::ops::select_where(&r, |row| {
            !matches!(row[0], Value::Int(i) if i % 2 == 0)
        });
        mjoin_relation::ops::set_layout(before);
        for (src, sub) in r.columns().iter().zip(half.columns()) {
            if let (Some(a), Some(b)) = (src.dict(), sub.dict()) {
                prop_assert!(std::sync::Arc::ptr_eq(a, b), "pool must be shared");
            }
        }
    }
}
