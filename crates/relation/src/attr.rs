//! Attributes and the attribute catalog.
//!
//! The paper works with named attributes (`A`, `B`, `C`, …). We intern names
//! into dense `u32` identifiers so that schemas, bitsets, and hash keys all
//! operate on machine integers; the [`Catalog`] maps back to names only when
//! formatting output.

use crate::error::{Error, Result};
use crate::fxhash::FxHashMap;
use std::fmt;

/// A dense identifier for an interned attribute name.
///
/// Ids are assigned consecutively from 0 by the [`Catalog`] that interned the
/// name, so they can index bitsets and vectors directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Interner mapping attribute names to dense [`AttrId`]s and back.
///
/// A `Catalog` is the naming context for one database scheme; every API that
/// prints attributes takes a `&Catalog`. Interning the same name twice
/// returns the same id.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    names: Vec<String>,
    index: FxHashMap<String, AttrId>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = AttrId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Intern every character of `s` as a single-letter attribute, in order.
    ///
    /// This mirrors the paper's convention where a relation scheme `ABC` is
    /// the attribute set `{A, B, C}`.
    pub fn intern_chars(&mut self, s: &str) -> Vec<AttrId> {
        s.chars().map(|c| self.intern(&c.to_string())).collect()
    }

    /// Look up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.index.get(name).copied()
    }

    /// Look up an already-interned name, or return an error naming it.
    pub fn require(&self, name: &str) -> Result<AttrId> {
        self.lookup(name)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))
    }

    /// The name of an id. Panics if the id was not issued by this catalog.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no attribute has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = Catalog::new();
        let a1 = c.intern("A");
        let b = c.intern("B");
        let a2 = c.intern("A");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_order() {
        let mut c = Catalog::new();
        assert_eq!(c.intern("X"), AttrId(0));
        assert_eq!(c.intern("Y"), AttrId(1));
        assert_eq!(c.intern("Z"), AttrId(2));
        assert_eq!(c.name(AttrId(1)), "Y");
    }

    #[test]
    fn intern_chars_matches_paper_convention() {
        let mut c = Catalog::new();
        let ids = c.intern_chars("ABC");
        assert_eq!(ids.len(), 3);
        assert_eq!(c.name(ids[0]), "A");
        assert_eq!(c.name(ids[2]), "C");
        // Re-interning shares ids.
        let ids2 = c.intern_chars("CDE");
        assert_eq!(ids2[0], ids[2]);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn lookup_and_require() {
        let mut c = Catalog::new();
        c.intern("A");
        assert_eq!(c.lookup("A"), Some(AttrId(0)));
        assert_eq!(c.lookup("Q"), None);
        assert!(c.require("A").is_ok());
        assert!(matches!(
            c.require("Q"),
            Err(Error::UnknownAttribute(n)) if n == "Q"
        ));
    }

    #[test]
    fn iter_yields_all() {
        let mut c = Catalog::new();
        c.intern_chars("AB");
        let pairs: Vec<_> = c.iter().map(|(i, n)| (i.0, n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "A".to_string()), (1, "B".to_string())]);
    }
}
