//! Column-major storage: per-attribute value vectors with dictionary
//! interning.
//!
//! A [`crate::Relation`] physically stores one [`Column`] per attribute.
//! All-integer attributes get a dense `i64` vector; anything else is
//! dictionary-encoded as `u32` codes over an [`Arc<Dict>`] value pool, with
//! the pool carrying a precomputed [`Value::stable_hash`] per entry so the
//! kernels hash an occurrence by *lookup*, never by re-hashing string bytes.
//!
//! The payload vectors are `Arc`-shared: cloning a column (or a whole
//! relation) is a reference-count bump, and a gather of a dictionary column
//! copies only the `u32` codes — the pool is shared with the source. That is
//! what makes late materialization cheap: join/semijoin/project kernels work
//! in terms of row-index selection vectors and only [`Column::gather`] the
//! columns the output actually keeps.

use crate::fxhash::FxHashMap;
use crate::value::Value;
use std::sync::Arc;

/// A dictionary: the distinct values of one (or more) interned columns, with
/// a precomputed [`Value::stable_hash`] per entry.
#[derive(Debug, Default)]
pub struct Dict {
    values: Vec<Value>,
    hashes: Vec<u64>,
}

impl Dict {
    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value behind `code`.
    #[inline]
    pub fn value(&self, code: u32) -> &Value {
        &self.values[code as usize]
    }

    /// The precomputed [`Value::stable_hash`] of the value behind `code`.
    #[inline]
    pub fn hash(&self, code: u32) -> u64 {
        self.hashes[code as usize]
    }

    /// Heap bytes held by the pool: the entry vectors plus string payloads.
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<Value>()
            + self.hashes.capacity() * std::mem::size_of::<u64>()
            + self
                .values
                .iter()
                .map(|v| match v {
                    Value::Int(_) => 0,
                    Value::Str(s) => s.len(),
                })
                .sum::<usize>()
    }
}

/// One attribute's values for every row of a relation, column-major.
#[derive(Debug, Clone)]
pub enum Column {
    /// A dense integer column: every row's value is `Value::Int`.
    Int(Arc<[i64]>),
    /// A dictionary-interned column: `codes[row]` indexes into `dict`.
    /// Used whenever any value is a string (mixed columns stay correct —
    /// the pool holds [`Value`]s, not bare strings).
    Dict {
        /// Per-row dictionary codes.
        codes: Arc<[u32]>,
        /// The shared value pool the codes index into.
        dict: Arc<Dict>,
    },
}

impl Column {
    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Dict { codes, .. } => codes.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this column is dictionary-interned.
    pub fn is_interned(&self) -> bool {
        matches!(self, Column::Dict { .. })
    }

    /// The value at `row` (an `Arc` bump for interned strings, never a
    /// string copy).
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Dict { codes, dict } => dict.value(codes[row]).clone(),
        }
    }

    /// The [`Value::stable_hash`] of the cell at `row`. Interned cells are a
    /// table lookup; integer cells hash the word directly.
    #[inline]
    pub fn cell_hash(&self, row: usize) -> u64 {
        match self {
            Column::Int(v) => Value::Int(v[row]).stable_hash(),
            Column::Dict { codes, dict } => dict.hash(codes[row]),
        }
    }

    /// Fold this column's cell hashes into per-row accumulators with `mix`
    /// (one batch pass, the columnar replacement for per-row key hashing).
    /// `acc.len()` must equal `self.len()`.
    pub(crate) fn hash_into(&self, acc: &mut [u64], mix: impl Fn(u64, u64) -> u64) {
        match self {
            Column::Int(v) => {
                for (a, &x) in acc.iter_mut().zip(v.iter()) {
                    *a = mix(*a, Value::Int(x).stable_hash());
                }
            }
            Column::Dict { codes, dict } => {
                for (a, &c) in acc.iter_mut().zip(codes.iter()) {
                    *a = mix(*a, dict.hash(c));
                }
            }
        }
    }

    /// Whether cell `i` of `self` equals cell `j` of `other`, across
    /// possibly different relations (and dictionaries).
    #[inline]
    pub fn cells_eq(&self, i: usize, other: &Column, j: usize) -> bool {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i] == b[j],
            (
                Column::Dict {
                    codes: ca,
                    dict: da,
                },
                Column::Dict {
                    codes: cb,
                    dict: db,
                },
            ) => {
                if Arc::ptr_eq(da, db) {
                    ca[i] == cb[j]
                } else {
                    let (x, y) = (ca[i], cb[j]);
                    da.hash(x) == db.hash(y) && da.value(x) == db.value(y)
                }
            }
            (Column::Int(a), Column::Dict { codes, dict }) => {
                dict.value(codes[j]).as_int() == Some(a[i])
            }
            (Column::Dict { codes, dict }, Column::Int(b)) => {
                dict.value(codes[i]).as_int() == Some(b[j])
            }
        }
    }

    /// Whether cell `row` equals a free-standing [`Value`].
    #[inline]
    pub fn cell_eq_value(&self, row: usize, v: &Value) -> bool {
        match self {
            Column::Int(a) => v.as_int() == Some(a[row]),
            Column::Dict { codes, dict } => dict.value(codes[row]) == v,
        }
    }

    /// Compare cell `i` of `self` with cell `j` of `other` under the global
    /// [`Value`] ordering (ints before strings). Used by canonical-order
    /// sorting; codes are never compared directly (they are not ordered).
    pub fn cells_cmp(&self, i: usize, other: &Column, j: usize) -> std::cmp::Ordering {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => a[i].cmp(&b[j]),
            (
                Column::Dict {
                    codes: ca,
                    dict: da,
                },
                Column::Dict {
                    codes: cb,
                    dict: db,
                },
            ) => da.value(ca[i]).cmp(db.value(cb[j])),
            (Column::Int(a), Column::Dict { codes, dict }) => {
                Value::Int(a[i]).cmp(dict.value(codes[j]))
            }
            (Column::Dict { codes, dict }, Column::Int(b)) => {
                dict.value(codes[i]).cmp(&Value::Int(b[j]))
            }
        }
    }

    /// Gather the rows in `sel` into a new column. Integer payloads are
    /// copied; interned columns copy only codes and share the pool.
    pub fn gather(&self, sel: &[u32]) -> Column {
        match self {
            Column::Int(v) => Column::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            Column::Dict { codes, dict } => Column::Dict {
                codes: sel.iter().map(|&i| codes[i as usize]).collect(),
                dict: Arc::clone(dict),
            },
        }
    }

    /// Concatenate gathers from several `(column, selection)` parts into one
    /// column — the merge step of partitioned kernels and the set
    /// operations. Fast paths: all-integer parts concatenate payloads, and
    /// interned parts sharing one pool concatenate codes; mixed or
    /// differently-pooled parts re-intern through a [`ColumnBuilder`].
    pub fn concat_gathered(parts: &[(&Column, &[u32])]) -> Column {
        let total: usize = parts.iter().map(|(_, sel)| sel.len()).sum();
        if parts.iter().all(|(c, _)| matches!(c, Column::Int(_))) {
            let mut out: Vec<i64> = Vec::with_capacity(total);
            for (c, sel) in parts {
                let Column::Int(v) = c else { unreachable!() };
                out.extend(sel.iter().map(|&i| v[i as usize]));
            }
            return Column::Int(out.into());
        }
        let shared_dict = parts.iter().find_map(|(c, _)| match c {
            Column::Dict { dict, .. } => Some(Arc::clone(dict)),
            Column::Int(_) => None,
        });
        if let Some(dict) = shared_dict {
            let all_share = parts.iter().all(|(c, sel)| match c {
                Column::Dict { dict: d, .. } => Arc::ptr_eq(d, &dict),
                // An empty integer part (e.g. an empty relation's
                // placeholder column) contributes nothing.
                Column::Int(_) => sel.is_empty(),
            });
            if all_share {
                let mut codes: Vec<u32> = Vec::with_capacity(total);
                for (c, sel) in parts {
                    if let Column::Dict { codes: cs, .. } = c {
                        codes.extend(sel.iter().map(|&i| cs[i as usize]));
                    }
                }
                return Column::Dict {
                    codes: codes.into(),
                    dict,
                };
            }
        }
        let mut b = ColumnBuilder::with_capacity(total);
        for (c, sel) in parts {
            for &i in *sel {
                b.push_cell(c, i as usize);
            }
        }
        b.finish()
    }

    /// Heap bytes of the payload vectors, *excluding* the shared pool
    /// ([`Dict::heap_bytes`] accounts that separately — callers decide how
    /// to attribute a pool shared by many columns).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Column::Int(v) => v.len() * std::mem::size_of::<i64>(),
            Column::Dict { codes, .. } => codes.len() * std::mem::size_of::<u32>(),
        }
    }

    /// The shared pool, if this column is interned.
    pub fn dict(&self) -> Option<&Arc<Dict>> {
        match self {
            Column::Dict { dict, .. } => Some(dict),
            Column::Int(_) => None,
        }
    }
}

/// Builds one [`Column`] value-by-value, staying dense-integer as long as
/// every value is an `Int` and switching to dictionary interning on the
/// first string.
#[derive(Debug, Default)]
pub struct ColumnBuilder {
    ints: Vec<i64>,
    interned: Option<DictBuilder>,
}

#[derive(Debug, Default)]
struct DictBuilder {
    codes: Vec<u32>,
    lookup: FxHashMap<Value, u32>,
    values: Vec<Value>,
    hashes: Vec<u64>,
}

impl DictBuilder {
    fn intern(&mut self, v: Value) -> u32 {
        if let Some(&c) = self.lookup.get(&v) {
            return c;
        }
        let c = u32::try_from(self.values.len()).expect("dictionary exceeds u32 codes");
        self.hashes.push(v.stable_hash());
        self.values.push(v.clone());
        self.lookup.insert(v, c);
        c
    }

    fn push(&mut self, v: Value) {
        let c = self.intern(v);
        self.codes.push(c);
    }
}

impl ColumnBuilder {
    /// A builder expecting about `n` rows.
    pub fn with_capacity(n: usize) -> Self {
        ColumnBuilder {
            ints: Vec::with_capacity(n),
            interned: None,
        }
    }

    /// Append one value.
    pub fn push(&mut self, v: Value) {
        match (&mut self.interned, v) {
            (None, Value::Int(x)) => self.ints.push(x),
            (None, v) => {
                // First non-integer: re-encode the integer prefix.
                let mut d = DictBuilder::default();
                d.codes.reserve(self.ints.len() + 1);
                for &x in &self.ints {
                    d.push(Value::Int(x));
                }
                d.push(v);
                self.ints = Vec::new();
                self.interned = Some(d);
            }
            (Some(d), v) => d.push(v),
        }
    }

    /// Append cell `row` of `col` (avoids constructing a [`Value`] for
    /// integer-to-integer copies).
    pub fn push_cell(&mut self, col: &Column, row: usize) {
        match (col, &mut self.interned) {
            (Column::Int(v), None) => self.ints.push(v[row]),
            _ => self.push(col.value(row)),
        }
    }

    /// Finish into a column.
    pub fn finish(self) -> Column {
        match self.interned {
            None => Column::Int(self.ints.into()),
            Some(d) => Column::Dict {
                codes: d.codes.into(),
                dict: Arc::new(Dict {
                    values: d.values,
                    hashes: d.hashes,
                }),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Column {
        let mut b = ColumnBuilder::with_capacity(vals.len());
        for &v in vals {
            b.push(Value::Int(v));
        }
        b.finish()
    }

    fn mixed(vals: &[Value]) -> Column {
        let mut b = ColumnBuilder::with_capacity(vals.len());
        for v in vals {
            b.push(v.clone());
        }
        b.finish()
    }

    #[test]
    fn all_int_stays_dense() {
        let c = ints(&[1, 2, 1]);
        assert!(!c.is_interned());
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(2), Value::Int(1));
    }

    #[test]
    fn string_triggers_interning_and_reencodes_prefix() {
        let c = mixed(&[Value::Int(7), Value::str("x"), Value::Int(7)]);
        assert!(c.is_interned());
        assert_eq!(c.value(0), Value::Int(7));
        assert_eq!(c.value(1), Value::str("x"));
        // Both Int(7) occurrences share one code.
        if let Column::Dict { codes, dict } = &c {
            assert_eq!(codes[0], codes[2]);
            assert_eq!(dict.len(), 2);
        }
    }

    #[test]
    fn cell_hash_matches_stable_hash() {
        let c = mixed(&[Value::Int(5), Value::str("five")]);
        assert_eq!(c.cell_hash(0), Value::Int(5).stable_hash());
        assert_eq!(c.cell_hash(1), Value::str("five").stable_hash());
    }

    #[test]
    fn cross_dict_equality() {
        let a = mixed(&[Value::str("a"), Value::str("b")]);
        let b = mixed(&[Value::str("b")]);
        assert!(a.cells_eq(1, &b, 0));
        assert!(!a.cells_eq(0, &b, 0));
        let i = ints(&[3]);
        let d = mixed(&[Value::Int(3), Value::str("3")]);
        assert!(i.cells_eq(0, &d, 0));
        assert!(!i.cells_eq(0, &d, 1), "Int(3) ≠ Str(\"3\")");
    }

    #[test]
    fn gather_shares_dict() {
        let c = mixed(&[Value::str("a"), Value::str("b"), Value::str("a")]);
        let g = c.gather(&[2, 0]);
        assert_eq!(g.value(0), Value::str("a"));
        let (Some(d1), Some(d2)) = (c.dict(), g.dict()) else {
            panic!("interned");
        };
        assert!(Arc::ptr_eq(d1, d2), "gather must share the pool");
    }

    #[test]
    fn concat_fast_paths_and_fallback() {
        let a = ints(&[1, 2]);
        let b = ints(&[3]);
        let c = Column::concat_gathered(&[(&a, &[0, 1]), (&b, &[0])]);
        assert!(!c.is_interned());
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(2), Value::Int(3));

        let d = mixed(&[Value::str("x")]);
        let e = d.gather(&[0]);
        let f = Column::concat_gathered(&[(&d, &[0]), (&e, &[0])]);
        assert!(Arc::ptr_eq(f.dict().unwrap(), d.dict().unwrap()));

        // Different pools force the re-interning fallback.
        let g = mixed(&[Value::str("y")]);
        let h = Column::concat_gathered(&[(&d, &[0]), (&g, &[0])]);
        assert_eq!(h.value(0), Value::str("x"));
        assert_eq!(h.value(1), Value::str("y"));
    }

    #[test]
    fn cmp_uses_value_order() {
        let i = ints(&[5]);
        let s = mixed(&[Value::str("a")]);
        assert_eq!(i.cells_cmp(0, &s, 0), std::cmp::Ordering::Less);
    }

    #[test]
    fn payload_and_dict_bytes() {
        let c = mixed(&[Value::str("hello"), Value::str("hello")]);
        assert_eq!(c.payload_bytes(), 2 * 4);
        assert!(c.dict().unwrap().heap_bytes() >= 5);
        let i = ints(&[1, 2, 3]);
        assert_eq!(i.payload_bytes(), 24);
    }
}
