//! JSON string escaping, shared by every hand-rolled renderer.
//!
//! The workspace is offline (no serde), so several crates render JSON by
//! hand: the analyzer's diagnostic reports, the server's wire protocol, the
//! experiment harness. They must all escape strings *identically* — a
//! renderer that misses a control character produces output another
//! component cannot parse back — so the escaping lives here, in the one
//! crate they all already depend on.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (quotes included).
///
/// Escapes `"`, `\`, the common control shorthands (`\n`, `\r`, `\t`), and
/// every remaining control character as `\u00XX`. Everything else — UTF-8
/// included — passes through verbatim, which every JSON parser accepts.
pub fn string_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as an owned JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    string_into(s, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_are_quoted_verbatim() {
        assert_eq!(string("hello"), "\"hello\"");
        assert_eq!(string(""), "\"\"");
        assert_eq!(string("π ⋈ σ"), "\"π ⋈ σ\"");
    }

    #[test]
    fn specials_escape() {
        assert_eq!(string("a\"b"), "\"a\\\"b\"");
        assert_eq!(string("a\\b"), "\"a\\\\b\"");
        assert_eq!(string("a\nb\tc\r"), "\"a\\nb\\tc\\r\"");
    }

    #[test]
    fn control_characters_become_unicode_escapes() {
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
        assert_eq!(string("\u{1f}"), "\"\\u001f\"");
        // 0x20 (space) and above pass through.
        assert_eq!(string(" "), "\" \"");
    }

    #[test]
    fn string_into_appends() {
        let mut out = String::from("{\"k\":");
        string_into("v", &mut out);
        assert_eq!(out, "{\"k\":\"v\"");
    }
}
