//! Dynamic bitsets over attribute ids.
//!
//! Relation schemes and the hypergraph algorithms manipulate attribute *sets*
//! constantly (union when joining, intersection to find shared attributes,
//! subset tests in Algorithm 2's steps 3/17). An `AttrSet` is a growable
//! `u64`-block bitset indexed by [`AttrId`], so none of those operations
//! allocate per-element or depend on the number of tuples.

use crate::attr::AttrId;
use std::fmt;

const BITS: usize = u64::BITS as usize;

/// A set of attributes, represented as a bitset over [`AttrId`]s.
///
/// The set grows automatically on insert; trailing zero blocks are trimmed so
/// that equality and hashing are canonical regardless of insertion history.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrSet {
    blocks: Vec<u64>,
}

impl AttrSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set containing exactly `id`.
    pub fn singleton(id: AttrId) -> Self {
        let mut s = Self::new();
        s.insert(id);
        s
    }

    /// Build a set from an iterator of ids.
    pub fn from_iter_ids<I: IntoIterator<Item = AttrId>>(ids: I) -> Self {
        let mut s = Self::new();
        for id in ids {
            s.insert(id);
        }
        s
    }

    fn trim(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }

    /// Insert `id`; returns `true` if it was newly added.
    pub fn insert(&mut self, id: AttrId) -> bool {
        let (blk, bit) = (id.index() / BITS, id.index() % BITS);
        if blk >= self.blocks.len() {
            self.blocks.resize(blk + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[blk] & mask == 0;
        self.blocks[blk] |= mask;
        fresh
    }

    /// Remove `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: AttrId) -> bool {
        let (blk, bit) = (id.index() / BITS, id.index() % BITS);
        if blk >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.blocks[blk] & mask != 0;
        self.blocks[blk] &= !mask;
        self.trim();
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: AttrId) -> bool {
        let (blk, bit) = (id.index() / BITS, id.index() % BITS);
        blk < self.blocks.len() && self.blocks[blk] & (1u64 << bit) != 0
    }

    /// Number of attributes in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Set union.
    pub fn union(&self, other: &Self) -> Self {
        let (long, short) = if self.blocks.len() >= other.blocks.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut blocks = long.blocks.clone();
        for (b, s) in blocks.iter_mut().zip(&short.blocks) {
            *b |= s;
        }
        Self { blocks }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (b, s) in self.blocks.iter_mut().zip(&other.blocks) {
            *b |= s;
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Self) -> Self {
        let n = self.blocks.len().min(other.blocks.len());
        let mut blocks: Vec<u64> = self.blocks[..n]
            .iter()
            .zip(&other.blocks[..n])
            .map(|(a, b)| a & b)
            .collect();
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        Self { blocks }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &Self) -> Self {
        let mut blocks = self.blocks.clone();
        for (b, o) in blocks.iter_mut().zip(&other.blocks) {
            *b &= !o;
        }
        let mut s = Self { blocks };
        s.trim();
        s
    }

    /// Whether the two sets share at least one attribute.
    ///
    /// `E1 ⋈ E2` is a Cartesian product exactly when this is `false` for
    /// their schemes (paper §2.2).
    pub fn intersects(&self, other: &Self) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        if self.blocks.len() > other.blocks.len() {
            // Trimmed representation: longer means a high bit is set.
            return false;
        }
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether the sets are disjoint.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        !self.intersects(other)
    }

    /// Iterate over member ids in increasing order.
    pub fn iter(&self) -> AttrSetIter<'_> {
        AttrSetIter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collect the members into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<AttrId> {
        self.iter().collect()
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        Self::from_iter_ids(iter)
    }
}

impl<'a> IntoIterator for &'a AttrSet {
    type Item = AttrId;
    type IntoIter = AttrSetIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the ids in an [`AttrSet`].
pub struct AttrSetIter<'a> {
    set: &'a AttrSet,
    block: usize,
    bits: u64,
}

impl Iterator for AttrSetIter<'_> {
    type Item = AttrId;

    fn next(&mut self) -> Option<AttrId> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(AttrId((self.block * BITS + bit) as u32));
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AttrSet::new();
        assert!(s.insert(AttrId(3)));
        assert!(!s.insert(AttrId(3)));
        assert!(s.contains(AttrId(3)));
        assert!(!s.contains(AttrId(4)));
        assert!(s.remove(AttrId(3)));
        assert!(!s.remove(AttrId(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn canonical_after_remove() {
        // Removing a high bit must shrink the block vector so equality holds.
        let mut s = set(&[1, 200]);
        s.remove(AttrId(200));
        assert_eq!(s, set(&[1]));
    }

    #[test]
    fn union_intersect_difference() {
        let a = set(&[0, 1, 70]);
        let b = set(&[1, 2]);
        assert_eq!(a.union(&b), set(&[0, 1, 2, 70]));
        assert_eq!(a.intersect(&b), set(&[1]));
        assert_eq!(a.difference(&b), set(&[0, 70]));
        assert_eq!(b.difference(&a), set(&[2]));
    }

    #[test]
    fn union_with_grows() {
        let mut a = set(&[0]);
        a.union_with(&set(&[130]));
        assert_eq!(a, set(&[0, 130]));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = set(&[1, 2]);
        let b = set(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(AttrSet::new().is_subset(&a));
        assert!(set(&[9]).is_disjoint(&a));
        assert!(!a.is_disjoint(&b));
        assert!(a.intersects(&b));
        // Differently sized block vectors.
        assert!(!set(&[1, 100]).is_subset(&set(&[1])));
    }

    #[test]
    fn iteration_in_order_across_blocks() {
        let s = set(&[5, 64, 3, 128]);
        let v: Vec<u32> = s.iter().map(|a| a.0).collect();
        assert_eq!(v, vec![3, 5, 64, 128]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(set(&[2, 0]).to_string(), "{#0,#2}");
        assert_eq!(AttrSet::new().to_string(), "{}");
    }
}
