//! The paper's cost model (§2.3), as an accounting ledger.
//!
//! > "We simply use as the cost measure the number of tuples that appear in
//! > the input relations and the relations generated."
//!
//! `cost(E(D))` charges each input relation once plus every intermediate
//! join result; `cost(P(D))` charges each input relation once plus the head
//! relation of every executed statement. Evaluators thread a [`CostLedger`]
//! and call [`CostLedger::charge_input`] / [`CostLedger::charge_generated`];
//! the ledger keeps a per-step breakdown so experiments can show *where*
//! tuples were spent.

use std::fmt;

/// Whether a charge was for an input relation or a generated (intermediate)
/// relation. The paper's total sums both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// A relation of the input database (charged once per occurrence used).
    Input,
    /// A relation produced during evaluation (one per join node or program
    /// statement).
    Generated,
}

/// One line of the cost breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostEntry {
    /// Input or generated.
    pub kind: CostKind,
    /// Human-readable origin, e.g. `R(ABC)` or `stmt 3: V := V ⋉ W`.
    pub label: String,
    /// `|R|` for the relation charged.
    pub tuples: u64,
}

/// Accumulates tuple-count cost with a per-step breakdown. Equality is
/// entry-by-entry (kind, label, and tuples), which the differential tests
/// use to check that executors agree on the whole charge sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostLedger {
    entries: Vec<CostEntry>,
}

impl CostLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge an input relation of `tuples` tuples.
    pub fn charge_input(&mut self, label: impl Into<String>, tuples: usize) {
        self.entries.push(CostEntry {
            kind: CostKind::Input,
            label: label.into(),
            tuples: tuples as u64,
        });
    }

    /// Charge a generated (intermediate or final) relation.
    pub fn charge_generated(&mut self, label: impl Into<String>, tuples: usize) {
        self.entries.push(CostEntry {
            kind: CostKind::Generated,
            label: label.into(),
            tuples: tuples as u64,
        });
    }

    /// Total cost: inputs plus generated, per the paper.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|e| e.tuples).sum()
    }

    /// Sum of input charges only.
    pub fn input_total(&self) -> u64 {
        self.sum(CostKind::Input)
    }

    /// Sum of generated charges only (the part an optimizer can influence).
    pub fn generated_total(&self) -> u64 {
        self.sum(CostKind::Generated)
    }

    fn sum(&self, kind: CostKind) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.tuples)
            .sum()
    }

    /// The individual charges, in the order incurred.
    pub fn entries(&self) -> &[CostEntry] {
        &self.entries
    }

    /// The largest single generated relation (peak intermediate size).
    pub fn peak_generated(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.kind == CostKind::Generated)
            .map(|e| e.tuples)
            .max()
            .unwrap_or(0)
    }

    /// Number of charges recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another ledger's entries into this one.
    pub fn absorb(&mut self, other: CostLedger) {
        self.entries.extend(other.entries);
    }
}

impl fmt::Display for CostLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            let tag = match e.kind {
                CostKind::Input => "input",
                CostKind::Generated => "gen  ",
            };
            writeln!(f, "  [{tag}] {:>12}  {}", e.tuples, e.label)?;
        }
        write!(
            f,
            "  total = {} (inputs {} + generated {})",
            self.total(),
            self.input_total(),
            self.generated_total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_split_by_kind() {
        let mut l = CostLedger::new();
        l.charge_input("R1", 10);
        l.charge_input("R2", 5);
        l.charge_generated("R1⋈R2", 50);
        assert_eq!(l.total(), 65);
        assert_eq!(l.input_total(), 15);
        assert_eq!(l.generated_total(), 50);
        assert_eq!(l.len(), 3);
        assert_eq!(l.peak_generated(), 50);
    }

    #[test]
    fn empty_ledger() {
        let l = CostLedger::new();
        assert!(l.is_empty());
        assert_eq!(l.total(), 0);
        assert_eq!(l.peak_generated(), 0);
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = CostLedger::new();
        a.charge_input("R", 1);
        let mut b = CostLedger::new();
        b.charge_generated("S", 2);
        a.absorb(b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.entries().len(), 2);
    }

    #[test]
    fn display_contains_breakdown() {
        let mut l = CostLedger::new();
        l.charge_input("R1", 10);
        l.charge_generated("J", 3);
        let s = l.to_string();
        assert!(s.contains("R1"));
        assert!(s.contains("total = 13 (inputs 10 + generated 3)"));
    }
}
