//! Error type shared by the relational substrate.

use std::fmt;

/// Errors raised by relation construction, operators, and the TSV loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A tuple's arity did not match its relation's schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// An attribute name was not present in the catalog.
    UnknownAttribute(String),
    /// A projection or key extraction referenced an attribute that is not in
    /// the source schema.
    AttributeNotInSchema(String),
    /// A parse error in textual input (TSV rows, scheme strings, join
    /// expressions), with a human-readable description.
    Parse(String),
}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "tuple arity {got} does not match schema arity {expected}"
                )
            }
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::AttributeNotInSchema(name) => {
                write!(f, "attribute `{name}` is not part of the source schema")
            }
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = Error::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert_eq!(e.to_string(), "tuple arity 2 does not match schema arity 3");
        assert_eq!(
            Error::UnknownAttribute("Q".into()).to_string(),
            "unknown attribute `Q`"
        );
        assert_eq!(
            Error::AttributeNotInSchema("B".into()).to_string(),
            "attribute `B` is not part of the source schema"
        );
        assert_eq!(Error::Parse("bad".into()).to_string(), "parse error: bad");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Parse("x".into()));
    }
}
