//! Relation schemas: ordered attribute lists with fast positional lookup.
//!
//! A relation scheme in the paper is a *set* of attributes. For storage we
//! need an order, so a [`Schema`] keeps its attributes sorted by [`AttrId`].
//! That canonical order means two relations over the same scheme always
//! agree on column positions, which lets the join operators splice tuples
//! positionally without any per-tuple name lookups.

use crate::attr::{AttrId, Catalog};
use crate::attrset::AttrSet;
use crate::error::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// An ordered, deduplicated attribute list (sorted by [`AttrId`]).
///
/// Schemas are cheaply cloneable (`Arc` internally): join results share the
/// schema computation, and tuples never embed their schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Schema {
    attrs: Arc<[AttrId]>,
}

impl Schema {
    /// Build a schema from attribute ids; duplicates are removed and the ids
    /// are sorted into canonical order.
    pub fn new(mut ids: Vec<AttrId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Schema { attrs: ids.into() }
    }

    /// The empty schema (zero attributes). A relation over it is either the
    /// empty relation or the single nullary tuple — the two relational
    /// constants.
    pub fn empty() -> Self {
        Schema {
            attrs: Arc::from([]),
        }
    }

    /// Build a schema by interning one single-letter attribute per character,
    /// matching the paper's `ABC` notation.
    pub fn from_chars(catalog: &mut Catalog, s: &str) -> Self {
        Self::new(catalog.intern_chars(s))
    }

    /// Build a schema from attribute names, interning them.
    pub fn from_names(catalog: &mut Catalog, names: &[&str]) -> Self {
        Self::new(names.iter().map(|n| catalog.intern(n)).collect())
    }

    /// Build a schema from an [`AttrSet`].
    pub fn from_set(set: &AttrSet) -> Self {
        // AttrSet already iterates in sorted order.
        Schema {
            attrs: set.to_vec().into(),
        }
    }

    /// The attributes, sorted.
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of attributes (the arity of tuples over this schema).
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Whether `attr` belongs to the schema.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.attrs.binary_search(&attr).is_ok()
    }

    /// Column position of `attr`, if present.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.attrs.binary_search(&attr).ok()
    }

    /// Column positions of every attribute in `attrs`, in the given order.
    ///
    /// Errors if any attribute is missing from the schema. Used to compile
    /// projections and join keys once per operator, not once per tuple.
    pub fn positions_of(&self, attrs: &[AttrId]) -> Result<Vec<usize>> {
        attrs
            .iter()
            .map(|&a| {
                self.position(a)
                    .ok_or_else(|| Error::AttributeNotInSchema(a.to_string()))
            })
            .collect()
    }

    /// The schema as an [`AttrSet`].
    pub fn to_set(&self) -> AttrSet {
        self.attrs.iter().copied().collect()
    }

    /// Union of two schemas (the scheme of a natural join result).
    pub fn union(&self, other: &Schema) -> Schema {
        let mut ids: Vec<AttrId> = Vec::with_capacity(self.arity() + other.arity());
        ids.extend_from_slice(&self.attrs);
        ids.extend_from_slice(&other.attrs);
        Schema::new(ids)
    }

    /// Intersection of two schemas (the natural-join key attributes).
    pub fn intersect(&self, other: &Schema) -> Schema {
        // Merge walk over two sorted lists.
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.attrs.len() && j < other.attrs.len() {
            match self.attrs[i].cmp(&other.attrs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.attrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Schema { attrs: out.into() }
    }

    /// Attributes of `self` not in `other`.
    pub fn difference(&self, other: &Schema) -> Schema {
        let attrs: Vec<AttrId> = self
            .attrs
            .iter()
            .copied()
            .filter(|a| !other.contains(*a))
            .collect();
        Schema {
            attrs: attrs.into(),
        }
    }

    /// Whether the two schemas share no attributes — i.e. joining relations
    /// over them would be a Cartesian product.
    pub fn is_disjoint(&self, other: &Schema) -> bool {
        self.intersect(other).is_empty()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &Schema) -> bool {
        self.attrs.iter().all(|&a| other.contains(a))
    }

    /// Render with attribute names from `catalog`, e.g. `ABC` for
    /// single-letter names or `{a,b,c}` otherwise.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> SchemaDisplay<'a> {
        SchemaDisplay {
            schema: self,
            catalog,
        }
    }
}

/// Helper returned by [`Schema::display`].
pub struct SchemaDisplay<'a> {
    schema: &'a Schema,
    catalog: &'a Catalog,
}

impl fmt::Display for SchemaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self
            .schema
            .attrs()
            .iter()
            .map(|&a| self.catalog.name(a))
            .collect();
        if !names.is_empty() && names.iter().all(|n| n.chars().count() == 1) {
            for n in names {
                write!(f, "{n}")?;
            }
            Ok(())
        } else {
            write!(f, "{{{}}}", names.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (Catalog, Schema) {
        let mut c = Catalog::new();
        let s = Schema::from_chars(&mut c, "ABC");
        (c, s)
    }

    #[test]
    fn canonical_order_and_dedup() {
        let s = Schema::new(vec![AttrId(2), AttrId(0), AttrId(2), AttrId(1)]);
        assert_eq!(s.attrs(), &[AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn from_chars_and_display() {
        let (c, s) = abc();
        assert_eq!(s.display(&c).to_string(), "ABC");
        let mut c2 = c.clone();
        let multi = Schema::from_names(&mut c2, &["id", "name"]);
        assert_eq!(multi.display(&c2).to_string(), "{id,name}");
        assert_eq!(Schema::empty().display(&c).to_string(), "{}");
    }

    #[test]
    fn positions() {
        let (_c, s) = abc();
        assert_eq!(s.position(AttrId(1)), Some(1));
        assert_eq!(s.position(AttrId(9)), None);
        assert_eq!(s.positions_of(&[AttrId(2), AttrId(0)]).unwrap(), vec![2, 0]);
        assert!(s.positions_of(&[AttrId(9)]).is_err());
    }

    #[test]
    fn set_operations() {
        let mut c = Catalog::new();
        let abc = Schema::from_chars(&mut c, "ABC");
        let cde = Schema::from_chars(&mut c, "CDE");
        let fg = Schema::from_chars(&mut c, "FG");
        assert_eq!(abc.union(&cde).display(&c).to_string(), "ABCDE");
        assert_eq!(abc.intersect(&cde).display(&c).to_string(), "C");
        assert_eq!(abc.difference(&cde).display(&c).to_string(), "AB");
        assert!(abc.is_disjoint(&fg));
        assert!(!abc.is_disjoint(&cde));
        assert!(Schema::from_chars(&mut c, "AB").is_subset(&abc));
        assert!(!abc.is_subset(&cde));
    }

    #[test]
    fn to_set_roundtrip() {
        let (_c, s) = abc();
        assert_eq!(Schema::from_set(&s.to_set()), s);
    }

    #[test]
    fn empty_schema() {
        let e = Schema::empty();
        assert!(e.is_empty());
        assert_eq!(e.arity(), 0);
        let (_c, s) = abc();
        assert!(e.is_subset(&s));
        assert!(e.is_disjoint(&s));
    }
}
