//! Selection (`σ`). Not used by the paper's algorithms themselves, but part
//! of any adoptable relational substrate and handy for building workloads.

use crate::attr::AttrId;
use crate::error::{Error, Result};
use crate::relation::{Relation, Row};
use crate::value::Value;

/// Select the tuples whose `attr` column equals `value`.
///
/// The columnar engine scans exactly one column and gathers survivors; the
/// row engine filters and clones whole rows.
pub fn select_eq(rel: &Relation, attr: AttrId, value: &Value) -> Result<Relation> {
    let pos = rel
        .schema()
        .position(attr)
        .ok_or_else(|| Error::AttributeNotInSchema(attr.to_string()))?;
    if super::layout() == super::Layout::Columnar {
        return Ok(super::columnar::col_select_eq(rel, pos, value));
    }
    super::columnar::count_row_path();
    let rows: Vec<Row> = rel
        .rows()
        .iter()
        .filter(|r| &r[pos] == value)
        .cloned()
        .collect();
    Ok(Relation::from_distinct_rows(rel.schema().clone(), rows))
}

/// Select the tuples satisfying an arbitrary predicate over the whole row.
///
/// The predicate sees values in the relation's canonical column order (the
/// columnar engine feeds it a transient scratch tuple per row, keeping the
/// output column-major without caching a row view).
pub fn select_where(rel: &Relation, pred: impl Fn(&[Value]) -> bool) -> Relation {
    if super::layout() == super::Layout::Columnar {
        return super::columnar::col_select_where(rel, pred);
    }
    super::columnar::count_row_path();
    let rows: Vec<Row> = rel.rows().iter().filter(|r| pred(r)).cloned().collect();
    Relation::from_distinct_rows(rel.schema().clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::schema::Schema;

    fn rel(c: &mut Catalog, scheme: &str, tuples: &[&[i64]]) -> Relation {
        let schema = Schema::from_chars(c, scheme);
        Relation::from_tuples(
            schema,
            tuples
                .iter()
                .map(|t| t.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn select_eq_filters() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 10], &[3, 30]]);
        let b = c.lookup("B").unwrap();
        let s = select_eq(&r, b, &Value::Int(10)).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.schema(), r.schema());
    }

    #[test]
    fn select_eq_unknown_attr_errors() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10]]);
        let z = c.intern("Z");
        assert!(select_eq(&r, z, &Value::Int(1)).is_err());
    }

    #[test]
    fn select_where_predicate() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[5, 2], &[7, 7]]);
        let s = select_where(&r, |row| {
            row[0].as_int().unwrap() > row[1].as_int().unwrap()
        });
        assert_eq!(s.len(), 1);
        assert!(s.contains_row(&[Value::Int(5), Value::Int(2)]));
    }

    #[test]
    fn selection_is_subset() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "A", &[&[1], &[2], &[3]]);
        let s = select_where(&r, |_| true);
        assert_eq!(s, r);
        let none = select_where(&r, |_| false);
        assert!(none.is_empty());
    }
}
