//! Semijoin (`⋉`), the reducer used by Algorithm 2 and by full reducers.

use super::key_at;
use crate::fxhash::FxHashSet;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;

/// Semijoin `left ⋉ right`: the tuples of `left` that join with at least one
/// tuple of `right`. Equivalently `π_{scheme(left)}(left ⋈ right)`.
///
/// The result schema is `left`'s schema — a semijoin statement in a program
/// never widens the head's scheme (§2.2). When the schemas are disjoint the
/// definition degenerates to `left` if `right` is nonempty and the empty
/// relation otherwise.
pub fn semijoin(left: &Relation, right: &Relation) -> Relation {
    let common = left.schema().intersect(right.schema());
    if common.is_empty() {
        return if right.is_empty() {
            Relation::empty(left.schema().clone())
        } else {
            left.clone()
        };
    }
    let lpos = left
        .schema()
        .positions_of(common.attrs())
        .expect("common attrs in left");
    let rpos = right
        .schema()
        .positions_of(common.attrs())
        .expect("common attrs in right");

    let mut keys: FxHashSet<Box<[Value]>> = FxHashSet::default();
    keys.reserve(right.len());
    for row in right.rows() {
        keys.insert(key_at(row, &rpos));
    }

    let rows = left
        .rows()
        .iter()
        .filter(|row| keys.contains(&key_at(row, &lpos)))
        .cloned()
        .collect();
    Relation::from_distinct_rows(left.schema().clone(), rows)
}

#[allow(dead_code)]
fn _schema_note(_s: &Schema) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::ops::{join, project};
    use crate::value::Value;

    fn rel(c: &mut Catalog, scheme: &str, tuples: &[&[i64]]) -> Relation {
        let schema = Schema::from_chars(c, scheme);
        Relation::from_tuples(
            schema,
            tuples
                .iter()
                .map(|t| t.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn filters_dangling_tuples() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&mut c, "BC", &[&[10, 0], &[30, 0]]);
        let sj = semijoin(&r, &s);
        assert_eq!(sj.len(), 2);
        assert_eq!(sj.schema(), r.schema());
        assert!(sj.contains_row(&[Value::Int(1), Value::Int(10)]));
        assert!(sj.contains_row(&[Value::Int(3), Value::Int(30)]));
    }

    #[test]
    fn equals_projection_of_join() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&mut c, "BC", &[&[10, 0], &[10, 1], &[30, 0]]);
        let via_join = project(&join(&r, &s), r.schema().attrs()).unwrap();
        assert_eq!(semijoin(&r, &s), via_join);
    }

    #[test]
    fn disjoint_nonempty_right_is_identity() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2]]);
        let s = rel(&mut c, "CD", &[&[9, 9]]);
        assert_eq!(semijoin(&r, &s), r);
    }

    #[test]
    fn disjoint_empty_right_empties_left() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2]]);
        let s = Relation::empty(Schema::from_chars(&mut c, "CD"));
        let sj = semijoin(&r, &s);
        assert!(sj.is_empty());
        assert_eq!(sj.schema(), r.schema());
    }

    #[test]
    fn idempotent() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]);
        let s = rel(&mut c, "BC", &[&[10, 5]]);
        let once = semijoin(&r, &s);
        let twice = semijoin(&once, &s);
        assert_eq!(once, twice);
    }

    #[test]
    fn reduces_to_subset_of_left() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]);
        let s = rel(&mut c, "B", &[&[10], &[20], &[99]]);
        let sj = semijoin(&r, &s);
        assert_eq!(sj, r); // every left tuple matches
        for row in sj.rows() {
            assert!(r.contains_row(row));
        }
    }
}
