//! Semijoin (`⋉`), the reducer used by Algorithm 2 and by full reducers.

use super::hashtable::RawTable;
use super::{columnar, hash_at, keys_eq, layout, Layout};
use crate::relation::{Relation, Row};
use crate::schema::Schema;

/// Build a key-deduplicated filter table over `rows` at `rpos`: one entry
/// per distinct key, each pointing at a representative row. Probing then
/// needs only "is there any hash-and-key match", never a chain walk over
/// duplicates. No key materialization on either side.
fn build_filter(rows: &[Row], rpos: &[usize]) -> RawTable {
    let mut table = RawTable::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let h = hash_at(row, rpos);
        if table
            .candidates(h)
            .any(|j| keys_eq(&rows[j], rpos, row, rpos))
        {
            continue;
        }
        table.insert(h, i as u32);
    }
    table
}

/// Whether `row` (at `lpos`) matches any filter key in `table` (over
/// `rrows` at `rpos`).
#[inline]
fn filter_contains(
    table: &RawTable,
    rrows: &[Row],
    rpos: &[usize],
    row: &Row,
    lpos: &[usize],
) -> bool {
    table
        .candidates(hash_at(row, lpos))
        .any(|j| keys_eq(&rrows[j], rpos, row, lpos))
}

/// Semijoin `left ⋉ right`: the tuples of `left` that join with at least one
/// tuple of `right`. Equivalently `π_{scheme(left)}(left ⋈ right)`.
///
/// The result schema is `left`'s schema — a semijoin statement in a program
/// never widens the head's scheme (§2.2). When the schemas are disjoint the
/// definition degenerates to `left` if `right` is nonempty and the empty
/// relation otherwise.
pub fn semijoin(left: &Relation, right: &Relation) -> Relation {
    let common = left.schema().intersect(right.schema());
    if common.is_empty() {
        return if right.is_empty() {
            Relation::empty(left.schema().clone())
        } else {
            left.clone()
        };
    }
    let lpos = left
        .schema()
        .positions_of(common.attrs())
        .expect("common attrs in left");
    let rpos = right
        .schema()
        .positions_of(common.attrs())
        .expect("common attrs in right");

    if layout() == Layout::Columnar {
        return columnar::col_semijoin(left, right, &lpos, &rpos, 1).0;
    }
    columnar::count_row_path();
    let table = build_filter(right.rows(), &rpos);

    let rows = left
        .rows()
        .iter()
        .filter(|row| filter_contains(&table, right.rows(), &rpos, row, &lpos))
        .cloned()
        .collect();
    Relation::from_distinct_rows(left.schema().clone(), rows)
}

/// Parallel semijoin on the shared pool: build the filter's key set once,
/// then probe chunks of `left` concurrently against it.
///
/// Unlike a join, a semijoin never combines tuples, so there is no need to
/// co-partition the two sides by key hash — a single read-only key set
/// shared by every probe task does the same work with no partitioning pass
/// over the (typically much larger) probed side. Chunks are contiguous
/// slices of `left`, so concatenating the per-chunk survivors reproduces
/// the sequential output order exactly.
///
/// Falls back to [`semijoin`] for small inputs, a single thread, or the
/// disjoint-schema degenerate case (which does no per-tuple work).
pub fn par_semijoin(left: &Relation, right: &Relation, threads: usize) -> Relation {
    par_semijoin_cutoff(left, right, threads, super::par_cutoff())
}

/// [`par_semijoin`] with an explicit parallel/sequential cutoff in rows.
pub fn par_semijoin_cutoff(
    left: &Relation,
    right: &Relation,
    threads: usize,
    cutoff: usize,
) -> Relation {
    let threads = threads.max(1);
    let mut sp = mjoin_trace::span("op", "semijoin");
    if sp.is_active() {
        sp.arg("left_rows", left.len());
        sp.arg("right_rows", right.len());
        sp.arg("threads", threads);
    }
    if threads == 1 || (left.len() < cutoff && right.len() < cutoff) {
        let out = semijoin(left, right);
        sp.arg("strategy", "sequential");
        sp.arg("out_rows", out.len());
        return out;
    }
    let common = left.schema().intersect(right.schema());
    if common.is_empty() {
        let out = semijoin(left, right);
        sp.arg("strategy", "disjoint");
        sp.arg("out_rows", out.len());
        return out;
    }
    let lpos = left
        .schema()
        .positions_of(common.attrs())
        .expect("common attrs in left");
    let rpos = right
        .schema()
        .positions_of(common.attrs())
        .expect("common attrs in right");

    if layout() == Layout::Columnar {
        let (out, keys) = columnar::col_semijoin(left, right, &lpos, &rpos, threads);
        sp.arg("strategy", "chunked_probe");
        sp.arg("build_keys", keys);
        sp.arg("out_rows", out.len());
        return out;
    }
    columnar::count_row_path();
    let table = build_filter(right.rows(), &rpos);

    let outputs = mjoin_pool::par_map_slices(left.rows(), threads, |_, chunk| {
        chunk
            .iter()
            .filter(|row| filter_contains(&table, right.rows(), &rpos, row, &lpos))
            .cloned()
            .collect::<Vec<Row>>()
    });

    let out = Relation::from_distinct_rows(
        left.schema().clone(),
        outputs.into_iter().flatten().collect(),
    );
    sp.arg("strategy", "chunked_probe");
    sp.arg("build_keys", table.len());
    sp.arg("out_rows", out.len());
    out
}

#[allow(dead_code)]
fn _schema_note(_s: &Schema) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::ops::{join, project};
    use crate::value::Value;

    fn rel(c: &mut Catalog, scheme: &str, tuples: &[&[i64]]) -> Relation {
        let schema = Schema::from_chars(c, scheme);
        Relation::from_tuples(
            schema,
            tuples
                .iter()
                .map(|t| t.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn filters_dangling_tuples() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&mut c, "BC", &[&[10, 0], &[30, 0]]);
        let sj = semijoin(&r, &s);
        assert_eq!(sj.len(), 2);
        assert_eq!(sj.schema(), r.schema());
        assert!(sj.contains_row(&[Value::Int(1), Value::Int(10)]));
        assert!(sj.contains_row(&[Value::Int(3), Value::Int(30)]));
    }

    #[test]
    fn equals_projection_of_join() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 30]]);
        let s = rel(&mut c, "BC", &[&[10, 0], &[10, 1], &[30, 0]]);
        let via_join = project(&join(&r, &s), r.schema().attrs()).unwrap();
        assert_eq!(semijoin(&r, &s), via_join);
    }

    #[test]
    fn disjoint_nonempty_right_is_identity() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2]]);
        let s = rel(&mut c, "CD", &[&[9, 9]]);
        assert_eq!(semijoin(&r, &s), r);
    }

    #[test]
    fn disjoint_empty_right_empties_left() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2]]);
        let s = Relation::empty(Schema::from_chars(&mut c, "CD"));
        let sj = semijoin(&r, &s);
        assert!(sj.is_empty());
        assert_eq!(sj.schema(), r.schema());
    }

    #[test]
    fn idempotent() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]);
        let s = rel(&mut c, "BC", &[&[10, 5]]);
        let once = semijoin(&r, &s);
        let twice = semijoin(&once, &s);
        assert_eq!(once, twice);
    }

    #[test]
    fn par_semijoin_agrees_with_sequential() {
        let mut c = Catalog::new();
        let schema_l = Schema::from_chars(&mut c, "AB");
        let schema_r = Schema::from_chars(&mut c, "BC");
        let l = Relation::from_rows(
            schema_l,
            (0..6000)
                .map(|i| vec![Value::Int(i), Value::Int(i % 700)].into())
                .collect(),
        )
        .unwrap();
        let r = Relation::from_rows(
            schema_r,
            (0..5000)
                .map(|i| vec![Value::Int(i % 350), Value::Int(i)].into())
                .collect(),
        )
        .unwrap();
        let seq = semijoin(&l, &r);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_semijoin(&l, &r, threads), seq, "threads = {threads}");
        }
    }

    #[test]
    fn par_semijoin_small_and_degenerate_fallbacks() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]);
        let s = rel(&mut c, "BC", &[&[10, 5]]);
        assert_eq!(par_semijoin(&r, &s, 8), semijoin(&r, &s));
        let disjoint = rel(&mut c, "DE", &[&[9, 9]]);
        assert_eq!(par_semijoin(&r, &disjoint, 8), r);
    }

    #[test]
    fn reduces_to_subset_of_left() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]);
        let s = rel(&mut c, "B", &[&[10], &[20], &[99]]);
        let sj = semijoin(&r, &s);
        assert_eq!(sj, r); // every left tuple matches
        for row in sj.rows() {
            assert!(r.contains_row(row));
        }
    }
}
