//! `RawTable` — the allocation-lean hash table behind every join and
//! semijoin kernel.
//!
//! The original kernels keyed `FxHashMap`/`FxHashSet` by materialized
//! `Box<[Value]>` keys: one heap allocation per build row *and one per probe
//! row*, just to compare a handful of positions. `RawTable` stores only
//! `(precomputed hash, build-row index)` entries in bucket chains; collisions
//! resolve by comparing `row[pos]` slices positionally against the borrowed
//! build rows, so neither building nor probing allocates at all.
//!
//! The table is deliberately a *multimap*: duplicate keys simply share a
//! bucket chain (they share a hash), which is what a join needs. Callers
//! that want set semantics (semijoin filters) look up before inserting.
//!
//! Entries carry `u32` row indices — relations here are bounded far below
//! 4 billion rows ([`RawTable::insert`] checks in debug builds).

/// Sentinel for "no entry" in bucket heads and chain links.
const EMPTY: u32 = u32::MAX;

#[derive(Debug)]
struct Entry {
    /// Precomputed key hash of the build row.
    hash: u64,
    /// Index of the build row this entry stands for.
    row: u32,
    /// Next entry in the same bucket, or [`EMPTY`].
    next: u32,
}

/// A chained hash table of `(hash, row-index)` entries. See the module docs.
#[derive(Debug)]
pub(crate) struct RawTable {
    /// `buckets.len()` is a power of two; `mask == buckets.len() - 1`.
    mask: u64,
    /// Head entry index per bucket, or [`EMPTY`].
    buckets: Box<[u32]>,
    entries: Vec<Entry>,
}

impl RawTable {
    /// A table sized for about `n` entries (load factor ≤ 0.5).
    pub(crate) fn with_capacity(n: usize) -> Self {
        let buckets = (n.max(1) * 2).next_power_of_two();
        RawTable {
            mask: buckets as u64 - 1,
            buckets: vec![EMPTY; buckets].into_boxed_slice(),
            entries: Vec::with_capacity(n),
        }
    }

    /// Append an entry for build row `row` with key hash `hash`.
    #[inline]
    pub(crate) fn insert(&mut self, hash: u64, row: u32) {
        debug_assert!(row != EMPTY, "row index overflows the u32 entry format");
        let b = (hash & self.mask) as usize;
        let e = self.entries.len() as u32;
        self.entries.push(Entry {
            hash,
            row,
            next: self.buckets[b],
        });
        self.buckets[b] = e;
    }

    /// The build-row indices whose key hash equals `hash`, most recently
    /// inserted first. The caller must still verify true key equality
    /// positionally — equal hashes are (almost always, but not certainly)
    /// equal keys.
    #[inline]
    pub(crate) fn candidates(&self, hash: u64) -> Candidates<'_> {
        Candidates {
            entries: &self.entries,
            hash,
            cur: self.buckets[(hash & self.mask) as usize],
        }
    }

    /// Number of entries.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Heap footprint in bytes (buckets + entries) — what a cache hit saves
    /// rebuilding.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<u32>()
            + self.entries.capacity() * std::mem::size_of::<Entry>()
    }
}

/// Iterator over hash-matching build-row indices; see
/// [`RawTable::candidates`].
pub(crate) struct Candidates<'a> {
    entries: &'a [Entry],
    hash: u64,
    cur: u32,
}

impl Iterator for Candidates<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.cur != EMPTY {
            let e = &self.entries[self.cur as usize];
            self.cur = e.next;
            if e.hash == self.hash {
                return Some(e.row as usize);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_has_no_candidates() {
        let t = RawTable::with_capacity(0);
        assert_eq!(t.len(), 0);
        assert_eq!(t.candidates(42).count(), 0);
    }

    #[test]
    fn duplicate_hashes_chain_in_one_bucket() {
        let mut t = RawTable::with_capacity(8);
        t.insert(7, 0);
        t.insert(7, 1);
        t.insert(9, 2);
        let rows: Vec<usize> = t.candidates(7).collect();
        assert_eq!(rows, vec![1, 0], "most recent first");
        assert_eq!(t.candidates(9).collect::<Vec<_>>(), vec![2]);
        assert_eq!(t.candidates(8).count(), 0);
    }

    #[test]
    fn same_bucket_different_hash_is_filtered() {
        // Two hashes that collide modulo the bucket mask but differ as u64s.
        let mut t = RawTable::with_capacity(2); // 4 buckets, mask 3
        t.insert(1, 0);
        t.insert(5, 1); // 5 & 3 == 1 & 3
        assert_eq!(t.candidates(1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(t.candidates(5).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn heap_bytes_counts_both_arrays() {
        let t = RawTable::with_capacity(100);
        assert!(t.heap_bytes() >= 256 * 4);
    }
}
