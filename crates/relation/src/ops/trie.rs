//! `TrieIndex` — a sorted, level-ordered view of a relation for worst-case
//! optimal joins (Generic Join / Leapfrog-Triejoin).
//!
//! A "trie" here is not a pointer structure: it is the relation's tuples
//! sorted lexicographically by a chosen column order, stored as one permuted
//! column vector per level. A node of the conceptual trie is a contiguous
//! row range `[lo, hi)` at some level; its children are the equal-value runs
//! of the next level within that range. That is exactly the representation
//! Leapfrog Triejoin wants: `seek`/`next` become galloping searches over a
//! sorted slice, and descending into a child is narrowing the range.
//!
//! Construction works directly over the columnar storage (PR 6): the sort
//! permutation is computed once over `u32` dictionary codes / packed `i64`s
//! and each level column is a [`Column::gather`] — interned levels copy only
//! codes and share the value pool; no row view is ever materialized.
//!
//! Cells are compared under the global [`Value`] ordering (ints before
//! strings), the same order [`Column::cells_cmp`] uses, so tries built from
//! different relations — with different dictionaries — intersect correctly.

use crate::column::Column;
use crate::relation::Relation;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// A sorted trie view over an `Arc<Relation>`: the analogue of
/// [`super::JoinIndex`] for the worst-case-optimal executor, with the same
/// ownership and accounting contract (pins its relation, reports resident
/// tuples/bytes for the index cache's budgets).
#[derive(Debug)]
pub struct TrieIndex {
    rel: Arc<Relation>,
    /// Schema column position of each trie level, outermost first. This is
    /// the identity of the view: the same relation sorted under a different
    /// level order is a different trie.
    key_pos: Box<[usize]>,
    /// Per-level columns, permuted into trie order (row `i` of every level
    /// is the same source tuple).
    levels: Vec<Column>,
    /// The sort permutation mapping trie row `i` back to source row
    /// `perm[i]`. Kept so callers can recover source tuples from trie
    /// positions; it is real resident memory and counts toward
    /// [`TrieIndex::heap_bytes`].
    perm: Box<[u32]>,
}

impl TrieIndex {
    /// Build the trie: gather the key columns, sort one permutation
    /// lexicographically under the global [`Value`] order, and gather each
    /// level through it. `key_pos` lists schema column positions, outermost
    /// level first; it need not cover the whole schema, but for the
    /// worst-case-optimal executor it always does (every attribute is
    /// eliminated somewhere).
    pub fn build(rel: Arc<Relation>, key_pos: Vec<usize>) -> Self {
        let n = rel.len();
        let cols = rel.columns();
        let keys: Vec<&Column> = key_pos.iter().map(|&p| &cols[p]).collect();
        let mut perm: Vec<u32> =
            (0..u32::try_from(n).expect("relation exceeds u32 rows")).collect();
        perm.sort_unstable_by(|&a, &b| {
            for c in &keys {
                match cmp_within(c, a as usize, b as usize) {
                    Ordering::Equal => continue,
                    non_eq => return non_eq,
                }
            }
            Ordering::Equal
        });
        let levels = keys.iter().map(|c| c.gather(&perm)).collect();
        TrieIndex {
            rel,
            key_pos: key_pos.into(),
            levels,
            perm: perm.into(),
        }
    }

    /// The source row index of trie row `i` (the sort permutation).
    pub fn source_row(&self, i: usize) -> usize {
        self.perm[i] as usize
    }

    /// The indexed relation.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.rel
    }

    /// The schema column positions of the levels, outermost first.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_pos
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of tuples (rows at every level).
    pub fn tuples(&self) -> usize {
        self.rel.len()
    }

    /// Heap bytes of the permuted level columns themselves plus the sort
    /// permutation vector (excluding the pinned relation and shared
    /// dictionary pools): the allocation a cache hit avoids re-sorting.
    /// The permutation is included because it is retained for the life of
    /// the trie — omitting it under-counted every cached trie by
    /// `4 × tuples` bytes against the cache's byte budget.
    pub fn heap_bytes(&self) -> usize {
        self.levels.iter().map(Column::payload_bytes).sum::<usize>()
            + self.perm.len() * std::mem::size_of::<u32>()
    }

    /// Resident bytes — the level columns plus the pinned relation's
    /// payload, mirroring [`super::JoinIndex::resident_bytes`] so the two
    /// index kinds share one cache byte budget. Dictionary pools are shared
    /// with the relation and counted on its side.
    pub fn resident_bytes(&self) -> usize {
        let rel_bytes = if self.rel.columns_materialized() {
            self.rel.resident_col_bytes()
        } else {
            self.rel.len() * self.rel.schema().arity() * std::mem::size_of::<Value>()
        };
        self.heap_bytes() + rel_bytes
    }

    /// The value of the cell at `level`, row `i` (an `Arc` bump for interned
    /// strings).
    pub fn value(&self, level: usize, i: usize) -> Value {
        self.levels[level].value(i)
    }

    /// Compare the cell at `(level, i)` of `self` with the cell at
    /// `(olevel, j)` of `other` under the global [`Value`] ordering, across
    /// possibly different relations and dictionaries.
    #[inline]
    pub fn cell_cmp(
        &self,
        level: usize,
        i: usize,
        other: &TrieIndex,
        olevel: usize,
        j: usize,
    ) -> Ordering {
        self.levels[level].cells_cmp(i, &other.levels[olevel], j)
    }

    /// End of the run of rows equal to row `i` at `level`, within
    /// `[i, hi)` — i.e. the first index `> i` whose cell differs, found by
    /// galloping (the run is usually short).
    pub fn run_end(&self, level: usize, i: usize, hi: usize) -> usize {
        debug_assert!(i < hi, "run_end needs a non-empty range");
        let col = &self.levels[level];
        gallop(i + 1, hi, |k| cmp_within(col, k, i) == Ordering::Equal)
    }

    /// First row in `[lo, hi)` whose cell at `level` is `>=` the cell at
    /// `(olevel, j)` of `other`, by galloping then binary search. Returns
    /// `hi` when every cell is smaller.
    pub fn seek_ge(
        &self,
        level: usize,
        lo: usize,
        hi: usize,
        other: &TrieIndex,
        olevel: usize,
        j: usize,
    ) -> usize {
        let col = &self.levels[level];
        let ocol = &other.levels[olevel];
        gallop(lo, hi, |k| col.cells_cmp(k, ocol, j) == Ordering::Less)
    }
}

/// Compare two cells of the *same* column. Integer columns compare the
/// packed words; interned columns compare pool values (codes are not
/// ordered).
#[inline]
fn cmp_within(col: &Column, i: usize, j: usize) -> Ordering {
    match col {
        Column::Int(v) => v[i].cmp(&v[j]),
        Column::Dict { codes, dict } => {
            let (a, b) = (codes[i], codes[j]);
            if a == b {
                Ordering::Equal
            } else {
                dict.value(a).cmp(dict.value(b))
            }
        }
    }
}

/// The first index in `[lo, hi)` where `pred` turns false, assuming `pred`
/// is monotone (true-prefix, false-suffix) on the range: exponential probe
/// from `lo`, then binary search within the bracketed window.
fn gallop(lo: usize, hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    if lo >= hi || !pred(lo) {
        return lo;
    }
    // Invariant: pred holds at `base - 1`.
    let mut step = 1usize;
    let mut base = lo + 1;
    while base < hi && pred(base) {
        base += step;
        step *= 2;
    }
    // Binary search in [base - step/2 .. min(base, hi)) — pred true below,
    // false at/after the answer.
    let (mut left, mut right) = (base - step / 2, base.min(hi));
    while left < right {
        let mid = left + (right - left) / 2;
        if pred(mid) {
            left = mid + 1;
        } else {
            right = mid;
        }
    }
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::relation::Row;
    use crate::relation_of_ints;
    use crate::schema::Schema;

    fn trie_of(rel: &Relation, key_pos: Vec<usize>) -> TrieIndex {
        TrieIndex::build(Arc::new(rel.clone()), key_pos)
    }

    #[test]
    fn levels_sorted_lexicographically() {
        let mut c = Catalog::new();
        let r =
            relation_of_ints(&mut c, "AB", &[&[2, 1], &[1, 9], &[1, 3], &[2, 0], &[0, 5]]).unwrap();
        let t = trie_of(&r, vec![0, 1]);
        let got: Vec<(Value, Value)> = (0..t.tuples())
            .map(|i| (t.value(0, i), t.value(1, i)))
            .collect();
        let mut want = got.clone();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(got[0], (Value::Int(0), Value::Int(5)));
    }

    #[test]
    fn reversed_key_order_sorts_by_inner_column_first() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[2, 1], &[1, 9], &[3, 1]]).unwrap();
        let t = trie_of(&r, vec![1, 0]);
        // Outer level is column B.
        assert_eq!(t.value(0, 0), Value::Int(1));
        assert_eq!(t.value(0, 1), Value::Int(1));
        assert_eq!(t.value(1, 0), Value::Int(2));
        assert_eq!(t.value(1, 1), Value::Int(3));
    }

    #[test]
    fn run_end_and_seek() {
        let mut c = Catalog::new();
        let r =
            relation_of_ints(&mut c, "AB", &[&[1, 1], &[1, 2], &[1, 3], &[4, 1], &[6, 1]]).unwrap();
        let t = trie_of(&r, vec![0, 1]);
        assert_eq!(t.run_end(0, 0, 5), 3, "run of A=1");
        assert_eq!(t.run_end(0, 3, 5), 4, "run of A=4");
        // Seek within the trie against another trie's cells.
        let probe = relation_of_ints(&mut c, "A", &[&[0], &[1], &[2], &[5], &[9]]).unwrap();
        let pt = trie_of(&probe, vec![0]);
        // probe rows sorted: 0,1,2,5,9
        assert_eq!(t.seek_ge(0, 0, 5, &pt, 0, 0), 0, ">= 0");
        assert_eq!(t.seek_ge(0, 0, 5, &pt, 0, 1), 0, ">= 1");
        assert_eq!(t.seek_ge(0, 0, 5, &pt, 0, 2), 3, ">= 2");
        assert_eq!(t.seek_ge(0, 0, 5, &pt, 0, 3), 4, ">= 5");
        assert_eq!(t.seek_ge(0, 0, 5, &pt, 0, 4), 5, ">= 9 exhausts");
    }

    #[test]
    fn mixed_values_follow_global_order() {
        let mut c = Catalog::new();
        let s = Schema::from_chars(&mut c, "A");
        let rows: Vec<Row> = vec![
            vec![Value::str("b")].into(),
            vec![Value::Int(7)].into(),
            vec![Value::str("a")].into(),
            vec![Value::Int(-2)].into(),
        ];
        let r = Relation::from_rows(s, rows).unwrap();
        let t = trie_of(&r, vec![0]);
        let got: Vec<Value> = (0..4).map(|i| t.value(0, i)).collect();
        assert_eq!(
            got,
            vec![
                Value::Int(-2),
                Value::Int(7),
                Value::str("a"),
                Value::str("b")
            ],
            "ints before strings"
        );
    }

    #[test]
    fn cross_dictionary_comparison() {
        let mut c = Catalog::new();
        let s = Schema::from_chars(&mut c, "A");
        let r1 = Relation::from_rows(
            s.clone(),
            vec![vec![Value::str("m")].into(), vec![Value::str("a")].into()],
        )
        .unwrap();
        let r2 = Relation::from_rows(
            s,
            vec![vec![Value::str("z")].into(), vec![Value::str("m")].into()],
        )
        .unwrap();
        let (t1, t2) = (trie_of(&r1, vec![0]), trie_of(&r2, vec![0]));
        // t1 sorted: a, m — t2 sorted: m, z. Distinct pools.
        assert_eq!(t1.cell_cmp(0, 1, &t2, 0, 0), Ordering::Equal);
        assert_eq!(t1.cell_cmp(0, 0, &t2, 0, 0), Ordering::Less);
        assert_eq!(t1.seek_ge(0, 0, 2, &t2, 0, 0), 1, "first >= \"m\"");
    }

    #[test]
    fn accounting_pins_relation() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        let arc = Arc::new(r);
        let ptr = Arc::as_ptr(&arc);
        let t = TrieIndex::build(Arc::clone(&arc), vec![0, 1]);
        drop(arc);
        assert_eq!(Arc::as_ptr(t.relation()), ptr);
        assert_eq!(t.tuples(), 2);
        assert_eq!(t.depth(), 2);
        assert_eq!(
            t.heap_bytes(),
            2 * 2 * 8 + 2 * 4,
            "two permuted i64 levels plus the u32 permutation"
        );
        assert!(t.resident_bytes() >= t.heap_bytes());
        assert_eq!(t.source_row(0), 0);
    }

    #[test]
    fn empty_relation_trie() {
        let mut c = Catalog::new();
        let s = Schema::from_chars(&mut c, "AB");
        let t = trie_of(&Relation::empty(s), vec![0, 1]);
        assert_eq!(t.tuples(), 0);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.heap_bytes(), 0);
    }
}
