//! Relational operators: natural join, semijoin, projection, selection, and
//! the set operations.
//!
//! All operators are hash-based and operate positionally: attribute-name
//! resolution happens once per operator call, never per tuple. Each operator
//! documents its relationship to the paper's statements (§2.2) and cost model
//! (§2.3); cost accounting itself lives in [`crate::cost`] and is done by the
//! callers that orchestrate evaluation.

mod columnar;
mod hashtable;
mod index;
mod join;
mod merge_join;
mod par_join;
mod project;
mod rename;
mod select;
mod semijoin;
mod setops;
mod spill;
mod trie;

pub use index::{
    par_join_indexed, par_join_indexed_cutoff, par_semijoin_indexed, par_semijoin_indexed_cutoff,
    JoinIndex,
};
pub use join::{join, join_key_positions};
pub use merge_join::merge_join;
pub use par_join::{par_join, par_join_cutoff};
pub use project::{par_project, par_project_cutoff, project};
pub use rename::rename;
pub use select::{select_eq, select_where};
pub use semijoin::{par_semijoin, par_semijoin_cutoff, semijoin};
pub use setops::{difference, intersection, union};
pub use spill::{grace_hash_join, SpillStats};
pub use trie::TrieIndex;

pub use columnar::key_hashes;
// `layout`/`set_layout`/`Layout` are defined below, alongside the
// `par_cutoff` knobs.

use crate::fxhash::mix;
use crate::relation::Row;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default parallel/sequential cutoff: below this row count the parallel
/// operators fall back to their sequential counterparts — partitioning and
/// task-queue overhead dominate until inputs reach a few thousand rows
/// (PR 2's trace timings put the crossover between 2k and 8k rows on the
/// benchmarked workloads, so the default stays at 4096).
pub const SMALL: usize = 4096;

/// Runtime override of the cutoff. `usize::MAX` means "no override": reads
/// fall through to the once-only environment seed [`par_cutoff_env`].
/// Readers never store here, so a concurrent [`set_par_cutoff`] can never
/// be clobbered by a racing first read (the old check-then-store
/// initialization lost exactly that race in long-lived multi-session
/// processes).
static PAR_CUTOFF_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// The environment-seeded cutoff, read exactly once per process.
fn par_cutoff_env() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("MJOIN_PAR_CUTOFF")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(SMALL)
    })
}

/// The process-wide parallel/sequential cutoff in rows.
///
/// Seeded once from the `MJOIN_PAR_CUTOFF` environment variable (behind a
/// `OnceLock`; [`SMALL`] when unset or unparsable) and overridable at
/// runtime with [`set_par_cutoff`]. `mjoin_program::ExecConfig` snapshots
/// this as its default and threads it through every operator call, so
/// per-run overrides don't need process-global state.
pub fn par_cutoff() -> usize {
    let v = PAR_CUTOFF_OVERRIDE.load(Ordering::Relaxed);
    if v != usize::MAX {
        return v;
    }
    par_cutoff_env()
}

/// Override the process-wide cutoff (0 forces the parallel paths on for
/// any input size; large values force the sequential paths).
pub fn set_par_cutoff(rows: usize) {
    // usize::MAX is the "no override" sentinel; clamp just below it so a
    // caller asking for "always sequential" doesn't erase its own override.
    PAR_CUTOFF_OVERRIDE.store(rows.min(usize::MAX - 1), Ordering::Relaxed);
}

/// The physical storage layout the operators execute against.
///
/// The kernels are written twice: the historical tuple-at-a-time **row**
/// engine (hash one `Row` at a time, splice output rows value-by-value) and
/// the batch-at-a-time **columnar** engine (hash whole key columns by
/// zipping column slices, verify candidates positionally against column
/// data, late-materialize output by gathering selection vectors). Both
/// produce identical relations — the differential test suite holds them
/// against each other — and identical key *hashes* (see [`hash_at`]), so an
/// index built under one layout probes correctly under the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Tuple-at-a-time kernels over the lazily materialized row view.
    Row,
    /// Batch kernels over the column vectors (the default).
    Columnar,
}

/// Runtime layout override: 0 = no override (fall through to the env
/// seed), 1 = row, 2 = columnar. As with [`PAR_CUTOFF_OVERRIDE`], readers
/// never store here — the old lazy init called `set_layout` from `layout()`
/// and could overwrite a concurrent runtime override with the env value.
static LAYOUT_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The environment-seeded layout, read exactly once per process.
fn layout_env() -> Layout {
    static ENV: OnceLock<Layout> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("MJOIN_LAYOUT") {
        Ok(v) if v.trim().eq_ignore_ascii_case("row") => Layout::Row,
        _ => Layout::Columnar,
    })
}

/// The process-wide storage layout the kernels dispatch on.
///
/// Seeded once from the `MJOIN_LAYOUT` environment variable (`row` selects
/// the row engine; anything else — including unset — the columnar engine).
/// Overridable at runtime with [`set_layout`]; the row engine exists as the
/// honest baseline for `layout_speedup` benchmarking and for differential
/// testing.
pub fn layout() -> Layout {
    match LAYOUT_OVERRIDE.load(Ordering::Relaxed) {
        1 => Layout::Row,
        2 => Layout::Columnar,
        _ => layout_env(),
    }
}

/// Override the process-wide storage layout.
pub fn set_layout(l: Layout) {
    LAYOUT_OVERRIDE.store(
        match l {
            Layout::Row => 1,
            Layout::Columnar => 2,
        },
        Ordering::Relaxed,
    );
}

/// Hash the values at `positions` of `row` (the partition and join key).
/// The kernels never materialize keys: this hash plus the positional
/// comparison of [`keys_eq`] replace `Box<[Value]>` key allocation on both
/// the build and probe sides.
///
/// Defined as the [`mix`]-fold of the cells' [`crate::Value::stable_hash`]es
/// — exactly what the columnar [`key_hashes`] computes batch-wise from
/// column slices — so the two layouts' hash tables interoperate bit-for-bit.
#[inline]
pub(crate) fn hash_at(row: &Row, positions: &[usize]) -> u64 {
    positions
        .iter()
        .fold(0u64, |acc, &p| mix(acc, row[p].stable_hash()))
}

/// Whether `a` restricted to `apos` equals `b` restricted to `bpos`
/// (positionally aligned key comparison; the collision check behind
/// [`hashtable::RawTable`] candidates).
#[inline]
pub(crate) fn keys_eq(a: &Row, apos: &[usize], b: &Row, bpos: &[usize]) -> bool {
    debug_assert_eq!(apos.len(), bpos.len());
    apos.iter().zip(bpos).all(|(&i, &j)| a[i] == b[j])
}

/// Split `rows` into `parts` key-disjoint groups by hashing the values at
/// `positions`. Zero-copy: the groups borrow the input rows. Rows that agree
/// on the key always land in the same group, so per-group operator results
/// can be concatenated without cross-group deduplication.
pub(crate) fn hash_partition<'a>(
    rows: &'a [Row],
    positions: &[usize],
    parts: usize,
) -> Vec<Vec<&'a Row>> {
    let parts = parts.max(1);
    let mut out: Vec<Vec<&Row>> = vec![Vec::new(); parts];
    for row in rows {
        out[(hash_at(row, positions) as usize) % parts].push(row);
    }
    out
}
