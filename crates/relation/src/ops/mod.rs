//! Relational operators: natural join, semijoin, projection, selection, and
//! the set operations.
//!
//! All operators are hash-based and operate positionally: attribute-name
//! resolution happens once per operator call, never per tuple. Each operator
//! documents its relationship to the paper's statements (§2.2) and cost model
//! (§2.3); cost accounting itself lives in [`crate::cost`] and is done by the
//! callers that orchestrate evaluation.

mod join;
mod merge_join;
mod par_join;
mod project;
mod rename;
mod select;
mod semijoin;
mod setops;

pub use join::{join, join_key_positions};
pub use merge_join::merge_join;
pub use par_join::par_join;
pub use project::project;
pub use rename::rename;
pub use select::{select_eq, select_where};
pub use semijoin::semijoin;
pub use setops::{difference, intersection, union};

use crate::relation::Row;
use crate::value::Value;

/// Extract the values at `positions` from `row` as a hash key.
#[inline]
pub(crate) fn key_at(row: &Row, positions: &[usize]) -> Box<[Value]> {
    positions.iter().map(|&p| row[p].clone()).collect()
}
