//! Projection (`π`), with set-semantics deduplication.

use super::{columnar, hash_partition, layout, par_cutoff, Layout};
use crate::attr::AttrId;
use crate::error::Result;
use crate::fxhash::FxHashSet;
use crate::relation::{Relation, Row};
use crate::schema::Schema;

/// Project `rel` onto `attrs` (which must all belong to `rel`'s schema),
/// deduplicating the result.
///
/// This implements the paper's project statement `R(U) := π_U R(S)` with the
/// requirement `U ⊆ S`; violating that is an error, not a silent extension.
pub fn project(rel: &Relation, attrs: &[AttrId]) -> Result<Relation> {
    let out_schema = Schema::new(attrs.to_vec());
    let positions = rel.schema().positions_of(out_schema.attrs())?;

    if out_schema == *rel.schema() {
        // Identity projection: nothing to do (rows are already distinct).
        return Ok(rel.clone());
    }

    if layout() == Layout::Columnar {
        columnar::count_batch();
        let ids = columnar::col_project_sequential(rel, &positions);
        return Ok(columnar::materialize_project(
            rel,
            &out_schema,
            &positions,
            &ids,
        ));
    }
    columnar::count_row_path();
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    seen.reserve(rel.len());
    let mut rows: Vec<Row> = Vec::new();
    for row in rel.rows() {
        let out: Row = positions.iter().map(|&p| row[p].clone()).collect();
        if seen.insert(out.clone()) {
            rows.push(out);
        }
    }
    Ok(Relation::from_distinct_rows(out_schema, rows))
}

/// Parallel projection with partition-then-merge deduplication.
///
/// Input rows are partitioned by the hash of the *projected* values, so all
/// rows that project to the same tuple land in the same partition; each
/// partition projects and deduplicates independently on the shared pool, and
/// the merge step is plain concatenation (no cross-partition duplicates are
/// possible). Row order is unspecified but deterministic for a given
/// `threads` value; `Relation` equality is order-blind.
pub fn par_project(rel: &Relation, attrs: &[AttrId], threads: usize) -> Result<Relation> {
    par_project_cutoff(rel, attrs, threads, par_cutoff())
}

/// [`par_project`] with an explicit parallel/sequential cutoff in rows.
pub fn par_project_cutoff(
    rel: &Relation,
    attrs: &[AttrId],
    threads: usize,
    cutoff: usize,
) -> Result<Relation> {
    let threads = threads.max(1);
    let mut sp = mjoin_trace::span("op", "project");
    if sp.is_active() {
        sp.arg("in_rows", rel.len());
        sp.arg("threads", threads);
    }
    if threads == 1 || rel.len() < cutoff {
        let out = project(rel, attrs)?;
        sp.arg("strategy", "sequential");
        sp.arg("out_rows", out.len());
        sp.arg("dedup_dropped", rel.len().saturating_sub(out.len()));
        return Ok(out);
    }
    let out_schema = Schema::new(attrs.to_vec());
    let positions = rel.schema().positions_of(out_schema.attrs())?;

    if out_schema == *rel.schema() {
        // Identity projection: nothing to do (rows are already distinct).
        sp.arg("strategy", "identity");
        sp.arg("out_rows", rel.len());
        return Ok(rel.clone());
    }

    if layout() == Layout::Columnar {
        columnar::count_batch();
        // Partition ids by projected-key hash (duplicates collide in one
        // partition), dedup each partition against the shared hash vector,
        // then gather the surviving ids in one pass.
        let hashes = columnar::key_hashes(rel, &positions);
        let cols = rel.columns();
        let parts = columnar::partition_ids(&hashes, threads);
        let partitions = parts.len();
        let kept = mjoin_pool::par_map(parts, |ids| {
            columnar::dedup_ids_by_key(cols, &positions, &hashes, ids.into_iter())
        });
        let ids: Vec<u32> = kept.into_iter().flatten().collect();
        let out = columnar::materialize_project(rel, &out_schema, &positions, &ids);
        sp.arg("strategy", "partitioned");
        sp.arg("partitions", partitions);
        sp.arg("out_rows", out.len());
        sp.arg("dedup_dropped", rel.len().saturating_sub(out.len()));
        return Ok(out);
    }
    columnar::count_row_path();
    let parts = hash_partition(rel.rows(), &positions, threads);
    let partitions = parts.len();
    let outputs = mjoin_pool::par_map(parts, |part| {
        let mut seen: FxHashSet<Row> = FxHashSet::default();
        seen.reserve(part.len());
        let mut rows: Vec<Row> = Vec::new();
        for row in part {
            let out: Row = positions.iter().map(|&p| row[p].clone()).collect();
            if seen.insert(out.clone()) {
                rows.push(out);
            }
        }
        rows
    });

    let out = Relation::from_distinct_rows(out_schema, outputs.into_iter().flatten().collect());
    sp.arg("strategy", "partitioned");
    sp.arg("partitions", partitions);
    sp.arg("out_rows", out.len());
    sp.arg("dedup_dropped", rel.len().saturating_sub(out.len()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::value::Value;

    fn rel(c: &mut Catalog, scheme: &str, tuples: &[&[i64]]) -> Relation {
        let schema = Schema::from_chars(c, scheme);
        Relation::from_tuples(
            schema,
            tuples
                .iter()
                .map(|t| t.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn projects_and_dedups() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[1, 20], &[2, 10]]);
        let a = c.lookup("A").unwrap();
        let p = project(&r, &[a]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.schema().display(&c).to_string(), "A");
        assert!(p.contains_row(&[Value::Int(1)]));
        assert!(p.contains_row(&[Value::Int(2)]));
    }

    #[test]
    fn identity_projection() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]);
        let p = project(&r, r.schema().attrs()).unwrap();
        assert_eq!(p, r);
    }

    #[test]
    fn projection_to_empty_schema() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]);
        let p = project(&r, &[]).unwrap();
        // Nonempty relation projects to the nullary unit.
        assert_eq!(p.len(), 1);
        assert!(p.contains_row(&[]));
        let empty = Relation::empty(r.schema().clone());
        assert_eq!(project(&empty, &[]).unwrap().len(), 0);
    }

    #[test]
    fn unknown_attribute_errors() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10]]);
        let z = c.intern("Z");
        assert!(project(&r, &[z]).is_err());
    }

    #[test]
    fn column_order_is_canonical() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "ABC", &[&[1, 2, 3]]);
        let a = c.lookup("A").unwrap();
        let cc = c.lookup("C").unwrap();
        // Requesting [C, A] still yields canonical schema order AC.
        let p = project(&r, &[cc, a]).unwrap();
        assert_eq!(p.schema().display(&c).to_string(), "AC");
        assert!(p.contains_row(&[Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn par_project_agrees_with_sequential() {
        let mut c = Catalog::new();
        let schema = Schema::from_chars(&mut c, "ABC");
        let r = Relation::from_rows(
            schema,
            (0..8000)
                .map(|i| vec![Value::Int(i % 90), Value::Int(i % 130), Value::Int(i)].into())
                .collect(),
        )
        .unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let seq = project(&r, &[a, b]).unwrap();
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                par_project(&r, &[a, b], threads).unwrap(),
                seq,
                "threads = {threads}"
            );
        }
        // Identity and error paths mirror the sequential operator.
        assert_eq!(par_project(&r, r.schema().attrs(), 4).unwrap(), r);
        let z = c.intern("Z");
        assert!(par_project(&r, &[z], 4).is_err());
    }

    #[test]
    fn monotone_size() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 20]]);
        let b = c.lookup("B").unwrap();
        let p = project(&r, &[b]).unwrap();
        assert!(p.len() <= r.len());
        assert_eq!(p.len(), 2);
    }
}
