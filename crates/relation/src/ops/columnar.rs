//! The batch-at-a-time columnar kernels.
//!
//! Each hot operator has a columnar twin here that works in three phases:
//!
//! 1. **Batch key hashing** ([`key_hashes`]): key hashes for *all* rows are
//!    computed by zipping column slices — a tight loop over one `i64`/`u32`
//!    vector per key attribute, with interned cells resolved by dictionary
//!    hash lookup. No per-row key materialization, no `Value` enum walks.
//! 2. **Selection-vector probing**: the [`RawTable`] is probed with the
//!    precomputed hashes; candidates verify positionally against column
//!    data ([`ids_eq`]) and survivors are collected as `u32` row-id vectors,
//!    never as rows.
//! 3. **Late materialization**: output columns are produced by gathering
//!    the selection vectors once per column ([`Column::gather`] /
//!    [`Column::concat_gathered`]); dictionary columns copy codes and share
//!    their pool with the input.
//!
//! The hashes here agree bit-for-bit with the row engine's
//! [`super::hash_at`] (both fold [`crate::Value::stable_hash`] through
//! [`mix`]), so tables and [`super::JoinIndex`]es built by either engine can
//! be probed by the other.

use super::hashtable::RawTable;
use crate::column::Column;
use crate::fxhash::mix;
use crate::relation::Relation;
use crate::schema::Schema;

/// Count one columnar batch-kernel invocation (the `--check-strategies`
/// layout gate watches this counter).
#[inline]
pub(crate) fn count_batch() {
    mjoin_trace::add("layout.columnar_batch", 1);
}

/// Count one row-engine kernel invocation.
#[inline]
pub(crate) fn count_row_path() {
    mjoin_trace::add("layout.row_path", 1);
}

/// The key hash of every row of `rel` at `positions`, batch-wise: one
/// mix-fold pass per key column over its packed payload slice. Agrees
/// bit-for-bit with the row engine's per-row [`super::hash_at`].
pub fn key_hashes(rel: &Relation, positions: &[usize]) -> Vec<u64> {
    let cols = rel.columns();
    let mut acc = vec![0u64; rel.len()];
    for &p in positions {
        cols[p].hash_into(&mut acc, mix);
    }
    acc
}

/// Whether row `i` of `acols` (at `apos`) and row `j` of `bcols` (at `bpos`)
/// agree on their key — the columnar twin of [`super::keys_eq`].
#[inline]
pub(crate) fn ids_eq(
    acols: &[Column],
    apos: &[usize],
    i: usize,
    bcols: &[Column],
    bpos: &[usize],
    j: usize,
) -> bool {
    debug_assert_eq!(apos.len(), bpos.len());
    apos.iter()
        .zip(bpos)
        .all(|(&a, &b)| acols[a].cells_eq(i, &bcols[b], j))
}

/// Gather the rows in `ids` of `rel` into a new relation (all columns, one
/// gather each). The caller guarantees `ids` selects distinct rows.
pub(crate) fn gather_relation(rel: &Relation, ids: &[u32]) -> Relation {
    let cols: Vec<Column> = rel.columns().iter().map(|c| c.gather(ids)).collect();
    Relation::from_distinct_columns(rel.schema().clone(), ids.len(), cols)
}

// ---------------------------------------------------------------------------
// Join.

/// A columnar hash-join, built once and probed in id batches: the build
/// side's [`RawTable`] over precomputed key hashes, plus the borrowed column
/// data both probe phases verify against. Read-only after construction, so
/// the parallel paths share one kernel across pool tasks.
pub(crate) struct ColJoin<'a> {
    bcols: &'a [Column],
    pcols: &'a [Column],
    bpos: &'a [usize],
    ppos: &'a [usize],
    table: RawTable,
}

impl<'a> ColJoin<'a> {
    /// Build over all rows of the build side.
    pub(crate) fn new(
        build: &'a Relation,
        probe: &'a Relation,
        bpos: &'a [usize],
        ppos: &'a [usize],
    ) -> Self {
        let bh = key_hashes(build, bpos);
        let mut table = RawTable::with_capacity(bh.len());
        for (i, &h) in bh.iter().enumerate() {
            table.insert(h, i as u32);
        }
        ColJoin {
            bcols: build.columns(),
            pcols: probe.columns(),
            bpos,
            ppos,
            table,
        }
    }

    /// Build over a subset of build rows (the radix co-partition path);
    /// `build_hashes` are global (indexed by row id).
    pub(crate) fn over_ids(
        build: &'a Relation,
        probe: &'a Relation,
        bpos: &'a [usize],
        ppos: &'a [usize],
        build_ids: &[u32],
        build_hashes: &[u64],
    ) -> Self {
        let mut table = RawTable::with_capacity(build_ids.len());
        for &i in build_ids {
            table.insert(build_hashes[i as usize], i);
        }
        ColJoin {
            bcols: build.columns(),
            pcols: probe.columns(),
            bpos,
            ppos,
            table,
        }
    }

    /// Probe rows `start..end` (with `probe_hashes` indexed globally),
    /// returning matched `(build_ids, probe_ids)` selection vectors.
    pub(crate) fn probe_range(
        &self,
        probe_hashes: &[u64],
        start: usize,
        end: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let mut bids: Vec<u32> = Vec::new();
        let mut pids: Vec<u32> = Vec::new();
        for (j, &hash) in probe_hashes.iter().enumerate().take(end).skip(start) {
            for bi in self.table.candidates(hash) {
                if ids_eq(self.bcols, self.bpos, bi, self.pcols, self.ppos, j) {
                    bids.push(bi as u32);
                    pids.push(j as u32);
                }
            }
        }
        (bids, pids)
    }

    /// Probe an explicit id list (the radix path).
    pub(crate) fn probe_ids(&self, ids: &[u32], probe_hashes: &[u64]) -> (Vec<u32>, Vec<u32>) {
        let mut bids: Vec<u32> = Vec::new();
        let mut pids: Vec<u32> = Vec::new();
        for &j in ids {
            let j = j as usize;
            for bi in self.table.candidates(probe_hashes[j]) {
                if ids_eq(self.bcols, self.bpos, bi, self.pcols, self.ppos, j) {
                    bids.push(bi as u32);
                    pids.push(j as u32);
                }
            }
        }
        (bids, pids)
    }
}

/// Late-materialize a join result from per-part `(build_ids, probe_ids)`
/// selection vectors: every output column is gathered exactly once, from
/// the probe side when the attribute is there (key attributes are equal on
/// both sides anyway), the build side otherwise.
pub(crate) fn materialize_join(
    build: &Relation,
    probe: &Relation,
    out_schema: &Schema,
    parts: &[(Vec<u32>, Vec<u32>)],
) -> Relation {
    let nrows: usize = parts.iter().map(|(b, _)| b.len()).sum();
    let bcols = build.columns();
    let pcols = probe.columns();
    let cols: Vec<Column> = out_schema
        .attrs()
        .iter()
        .map(|&a| match probe.schema().position(a) {
            Some(p) => Column::concat_gathered(
                &parts
                    .iter()
                    .map(|(_, pids)| (&pcols[p], pids.as_slice()))
                    .collect::<Vec<_>>(),
            ),
            None => {
                let p = build.schema().position(a).expect("attr from one side");
                Column::concat_gathered(
                    &parts
                        .iter()
                        .map(|(bids, _)| (&bcols[p], bids.as_slice()))
                        .collect::<Vec<_>>(),
                )
            }
        })
        .collect();
    // Output rows are distinct without explicit dedup: restricted to the
    // build schema an output row is its build row, restricted to the probe
    // schema its probe row, and input pairs are distinct.
    Relation::from_distinct_columns(out_schema.clone(), nrows, cols)
}

/// Sequential columnar natural join, building on the smaller side.
pub(crate) fn col_join(left: &Relation, right: &Relation) -> Relation {
    count_batch();
    let out_schema = left.schema().union(right.schema());
    let (build, probe) = if left.len() <= right.len() {
        (left, right)
    } else {
        (right, left)
    };
    let (bpos, ppos) = super::join::join_key_positions(build.schema(), probe.schema());
    let kernel = ColJoin::new(build, probe, &bpos, &ppos);
    let ph = key_hashes(probe, &ppos);
    let pair = kernel.probe_range(&ph, 0, probe.len());
    materialize_join(build, probe, &out_schema, std::slice::from_ref(&pair))
}

/// Columnar shared-build chunked-probe join: build once, probe contiguous
/// id ranges concurrently, gather all parts' selection vectors once.
pub(crate) fn col_join_chunked(build: &Relation, probe: &Relation, threads: usize) -> Relation {
    count_batch();
    let out_schema = build.schema().union(probe.schema());
    let (bpos, ppos) = super::join::join_key_positions(build.schema(), probe.schema());
    let kernel = ColJoin::new(build, probe, &bpos, &ppos);
    let ph = key_hashes(probe, &ppos);
    let ranges = split_ranges(probe.len(), threads);
    let parts = mjoin_pool::par_map(ranges, |(s, e)| kernel.probe_range(&ph, s, e));
    materialize_join(build, probe, &out_schema, &parts)
}

/// Columnar radix co-partition join: both sides' row ids are partitioned by
/// key hash, partition pairs build+probe independently (parallelizing the
/// build as well), and the key-disjoint outputs concatenate into one gather.
pub(crate) fn col_join_radix(left: &Relation, right: &Relation, threads: usize) -> Relation {
    count_batch();
    let out_schema = left.schema().union(right.schema());
    let (build, probe) = if left.len() <= right.len() {
        (left, right)
    } else {
        (right, left)
    };
    let (bpos, ppos) = super::join::join_key_positions(build.schema(), probe.schema());
    let bh = key_hashes(build, &bpos);
    let ph = key_hashes(probe, &ppos);
    let parts_n = threads.max(1);
    let bparts = partition_ids(&bh, parts_n);
    let pparts = partition_ids(&ph, parts_n);
    let pairs: Vec<(Vec<u32>, Vec<u32>)> = bparts.into_iter().zip(pparts).collect();
    let parts = mjoin_pool::par_map(pairs, |(bids, pids)| {
        ColJoin::over_ids(build, probe, &bpos, &ppos, &bids, &bh).probe_ids(&pids, &ph)
    });
    materialize_join(build, probe, &out_schema, &parts)
}

/// Contiguous `(start, end)` ranges covering `0..n` in `pieces` chunks.
pub(crate) fn split_ranges(n: usize, pieces: usize) -> Vec<(usize, usize)> {
    let pieces = pieces.clamp(1, n.max(1));
    let chunk = n.div_ceil(pieces);
    (0..pieces)
        .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e || n == 0)
        .collect()
}

/// Partition row ids `0..hashes.len()` by hash into `parts` id lists (the
/// columnar twin of [`super::hash_partition`], minus the row borrows).
pub(crate) fn partition_ids(hashes: &[u64], parts: usize) -> Vec<Vec<u32>> {
    let parts = parts.max(1);
    let mut out: Vec<Vec<u32>> = vec![Vec::new(); parts];
    for (i, &h) in hashes.iter().enumerate() {
        out[(h as usize) % parts].push(i as u32);
    }
    out
}

// ---------------------------------------------------------------------------
// Semijoin.

/// A columnar semijoin filter: key-deduplicated [`RawTable`] over the filter
/// side's key hashes.
pub(crate) struct ColFilter<'a> {
    fcols: &'a [Column],
    fpos: &'a [usize],
    table: RawTable,
}

impl<'a> ColFilter<'a> {
    pub(crate) fn new(filter: &'a Relation, fpos: &'a [usize]) -> Self {
        let fh = key_hashes(filter, fpos);
        let fcols = filter.columns();
        let mut table = RawTable::with_capacity(fh.len());
        for (i, &h) in fh.iter().enumerate() {
            if table
                .candidates(h)
                .any(|j| ids_eq(fcols, fpos, j, fcols, fpos, i))
            {
                continue;
            }
            table.insert(h, i as u32);
        }
        ColFilter { fcols, fpos, table }
    }

    /// Distinct keys in the filter.
    pub(crate) fn keys(&self) -> usize {
        self.table.len()
    }

    /// The ids in `start..end` of the probed side whose key is present.
    pub(crate) fn matching_range(
        &self,
        pcols: &[Column],
        ppos: &[usize],
        probe_hashes: &[u64],
        start: usize,
        end: usize,
    ) -> Vec<u32> {
        (start..end)
            .filter(|&j| {
                self.table
                    .candidates(probe_hashes[j])
                    .any(|fi| ids_eq(self.fcols, self.fpos, fi, pcols, ppos, j))
            })
            .map(|j| j as u32)
            .collect()
    }
}

/// Columnar semijoin body, sequential or chunked over the pool; the caller
/// has already handled the disjoint-schema degenerate case.
pub(crate) fn col_semijoin(
    left: &Relation,
    right: &Relation,
    lpos: &[usize],
    rpos: &[usize],
    threads: usize,
) -> (Relation, usize) {
    count_batch();
    let filter = ColFilter::new(right, rpos);
    let lh = key_hashes(left, lpos);
    let lcols = left.columns();
    let ids: Vec<u32> = if threads <= 1 {
        filter.matching_range(lcols, lpos, &lh, 0, left.len())
    } else {
        mjoin_pool::par_map(split_ranges(left.len(), threads), |(s, e)| {
            filter.matching_range(lcols, lpos, &lh, s, e)
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let keys = filter.keys();
    (gather_relation(left, &ids), keys)
}

// ---------------------------------------------------------------------------
// Projection.

/// Columnar projection: dedup by hashing the projected columns batch-wise
/// (first-occurrence ids survive), then gather only the kept columns.
/// `positions` map output schema order to input column positions.
pub(crate) fn col_project_sequential(rel: &Relation, positions: &[usize]) -> Vec<u32> {
    let h = key_hashes(rel, positions);
    let cols = rel.columns();
    dedup_ids_by_key(cols, positions, &h, (0..rel.len()).map(|i| i as u32))
}

/// Dedup an id stream by projected key: keeps the first occurrence of each
/// distinct key, in stream order. `hashes` are global (indexed by id).
pub(crate) fn dedup_ids_by_key(
    cols: &[Column],
    positions: &[usize],
    hashes: &[u64],
    ids: impl Iterator<Item = u32>,
) -> Vec<u32> {
    let (lo, hi) = ids.size_hint();
    let mut table = RawTable::with_capacity(hi.unwrap_or(lo));
    let mut out: Vec<u32> = Vec::new();
    for i in ids {
        let h = hashes[i as usize];
        if table
            .candidates(h)
            .any(|j| ids_eq(cols, positions, j, cols, positions, i as usize))
        {
            continue;
        }
        table.insert(h, i);
        out.push(i);
    }
    out
}

/// Gather the projection's output columns for the surviving `ids`.
pub(crate) fn materialize_project(
    rel: &Relation,
    out_schema: &Schema,
    positions: &[usize],
    ids: &[u32],
) -> Relation {
    let cols = rel.columns();
    let out: Vec<Column> = positions.iter().map(|&p| cols[p].gather(ids)).collect();
    Relation::from_distinct_columns(out_schema.clone(), ids.len(), out)
}

// ---------------------------------------------------------------------------
// Selection and set operations.

/// Columnar `select_eq`: scan one column, gather all.
pub(crate) fn col_select_eq(rel: &Relation, pos: usize, value: &crate::Value) -> Relation {
    count_batch();
    let col = &rel.columns()[pos];
    let ids: Vec<u32> = (0..rel.len())
        .filter(|&i| col.cell_eq_value(i, value))
        .map(|i| i as u32)
        .collect();
    gather_relation(rel, &ids)
}

/// Columnar `select_where`: evaluate the row predicate against a transient
/// scratch tuple (no row-view caching), gather survivors.
pub(crate) fn col_select_where(rel: &Relation, pred: impl Fn(&[crate::Value]) -> bool) -> Relation {
    count_batch();
    let cols = rel.columns();
    let mut scratch: Vec<crate::Value> = Vec::with_capacity(cols.len());
    let mut ids: Vec<u32> = Vec::new();
    for i in 0..rel.len() {
        scratch.clear();
        scratch.extend(cols.iter().map(|c| c.value(i)));
        if pred(&scratch) {
            ids.push(i as u32);
        }
    }
    gather_relation(rel, &ids)
}

/// Shared body for the columnar set operations: a full-row hash table over
/// `right`, membership-checked from `left`.
struct SetTable<'a> {
    rcols: &'a [Column],
    all: Vec<usize>,
    table: RawTable,
}

impl<'a> SetTable<'a> {
    fn new(right: &'a Relation) -> (Self, Vec<u64>) {
        let all: Vec<usize> = (0..right.schema().arity()).collect();
        let rh = key_hashes(right, &all);
        let mut table = RawTable::with_capacity(rh.len());
        for (i, &h) in rh.iter().enumerate() {
            table.insert(h, i as u32);
        }
        (
            SetTable {
                rcols: right.columns(),
                all,
                table,
            },
            rh,
        )
    }

    fn contains(&self, lcols: &[Column], i: usize, hash: u64) -> bool {
        self.table
            .candidates(hash)
            .any(|j| ids_eq(self.rcols, &self.all, j, lcols, &self.all, i))
    }
}

/// Columnar union: `left`'s columns pass through; `right` contributes the
/// rows absent from `left`, appended via one concat-gather per column.
pub(crate) fn col_union(left: &Relation, right: &Relation) -> Relation {
    count_batch();
    let (set, _) = SetTable::new(left);
    let all: Vec<usize> = (0..right.schema().arity()).collect();
    let rh = key_hashes(right, &all);
    let rcols = right.columns();
    let fresh: Vec<u32> = (0..right.len())
        .filter(|&i| !set.contains(rcols, i, rh[i]))
        .map(|i| i as u32)
        .collect();
    let keep_left: Vec<u32> = (0..left.len() as u32).collect();
    let lcols = left.columns();
    let cols: Vec<Column> = lcols
        .iter()
        .zip(rcols.iter())
        .map(|(lc, rc)| Column::concat_gathered(&[(lc, keep_left.as_slice()), (rc, &fresh)]))
        .collect();
    Relation::from_distinct_columns(left.schema().clone(), left.len() + fresh.len(), cols)
}

/// Columnar difference / intersection: filter `left`'s ids by membership in
/// `right`, gather.
pub(crate) fn col_diff_inter(left: &Relation, right: &Relation, keep_present: bool) -> Relation {
    count_batch();
    let (set, _) = SetTable::new(right);
    let all: Vec<usize> = (0..left.schema().arity()).collect();
    let lh = key_hashes(left, &all);
    let lcols = left.columns();
    let ids: Vec<u32> = (0..left.len())
        .filter(|&i| set.contains(lcols, i, lh[i]) == keep_present)
        .map(|i| i as u32)
        .collect();
    gather_relation(left, &ids)
}

// ---------------------------------------------------------------------------
// Rename.

/// Columnar rename: the data never moves — columns are re-ordered into the
/// new schema's canonical order by `Arc` clone, using the same permutation
/// the row path applies per tuple.
pub(crate) fn col_rename(rel: &Relation, new_schema: &Schema, perm: &[usize]) -> Relation {
    count_batch();
    let cols = rel.columns();
    let out: Vec<Column> = perm.iter().map(|&p| cols[p].clone()).collect();
    Relation::from_distinct_columns(new_schema.clone(), rel.len(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::ops::hash_at;
    use crate::relation_of_ints;
    use crate::value::Value;

    #[test]
    fn batch_hashes_match_row_hashes() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 10]]).unwrap();
        let pos = [1usize, 0];
        let batch = key_hashes(&r, &pos);
        for (i, row) in r.rows().iter().enumerate() {
            assert_eq!(batch[i], hash_at(row, &pos), "row {i}");
        }
        // Empty key: constant hash in both engines.
        let empty = key_hashes(&r, &[]);
        assert!(empty.iter().all(|&h| h == hash_at(&r.rows()[0], &[])));
    }

    #[test]
    fn batch_hashes_match_on_strings() {
        let mut c = Catalog::new();
        let schema = crate::schema::Schema::from_chars(&mut c, "AB");
        let rows = vec![
            vec![Value::Int(1), Value::str("x")].into(),
            vec![Value::Int(2), Value::str("yy")].into(),
        ];
        let r = crate::Relation::from_rows(schema, rows).unwrap();
        let pos = [0usize, 1];
        let batch = key_hashes(&r, &pos);
        for (i, row) in r.rows().iter().enumerate() {
            assert_eq!(batch[i], hash_at(row, &pos));
        }
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for (n, pieces) in [(10usize, 3usize), (1, 8), (0, 4), (7, 7), (100, 1)] {
            let ranges = split_ranges(n, pieces);
            let total: usize = ranges.iter().map(|(s, e)| e - s).sum();
            assert_eq!(total, n, "n={n} pieces={pieces}");
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
        }
    }

    #[test]
    fn partition_ids_is_exhaustive_and_disjoint() {
        let hashes: Vec<u64> = (0..100).map(|i| i * 2654435761).collect();
        let parts = partition_ids(&hashes, 4);
        let mut all: Vec<u32> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<u32>>());
    }
}
