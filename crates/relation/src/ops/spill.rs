//! Grace-hash spill join: certificate-gated out-of-core execution.
//!
//! When the static memory certificate says a join's build side cannot fit
//! the configured budget, the executor routes the statement here instead of
//! the in-memory kernels: both operands are hash-partitioned by their
//! shared-key values into `p` temp files per side via the streaming TSV
//! writer, then each partition pair — 1/p of each input in expectation — is
//! joined in memory with the shared [`hash_join_rows`] kernel and the
//! results concatenated. Rows that agree on the key hash to the same
//! partition index on both sides, so no join pair is ever split across
//! partitions and per-pair outputs are key-disjoint (hence globally
//! distinct).
//!
//! The selection is *static*: the caller decides from the memory
//! certificate's per-statement build-side bound, never from runtime sizes,
//! so in-memory plans pay no check at all. This module only knows how to
//! spill once asked.

use super::join::hash_join_rows;
use super::{hash_at, join_key_positions};
use crate::relation::{Relation, Row};
use crate::tsv::{read_rows_tsv, write_row_tsv};
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// What a spilled join did, for the `mem.*` trace counters.
///
/// Returned by value rather than traced here so this crate stays free of
/// the trace dependency; the executor turns these into `mem.partitions`
/// and `mem.spilled_bytes` counter bumps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partition pairs joined (0 when the join never left memory).
    pub partitions: u64,
    /// Total TSV bytes written to spill files across both sides.
    pub spilled_bytes: u64,
}

/// A spill file that deletes itself on drop, so partitions never outlive
/// the statement — even on an error path or a panicking unwind.
struct TempFile {
    path: PathBuf,
}

impl TempFile {
    fn create() -> std::io::Result<(TempFile, BufWriter<File>)> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "mjoin-spill-{}-{}.tsv",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let w = BufWriter::new(File::create(&path)?);
        Ok((TempFile { path }, w))
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Partition `rel`'s rows by the hash of the values at `pos` into `p` spill
/// files. Returns the self-deleting file guards plus the bytes written.
fn partition_to_disk(
    rel: &Relation,
    pos: &[usize],
    p: usize,
) -> std::io::Result<(Vec<TempFile>, u64)> {
    let mut guards = Vec::with_capacity(p);
    let mut writers = Vec::with_capacity(p);
    for _ in 0..p {
        let (g, w) = TempFile::create()?;
        guards.push(g);
        writers.push(w);
    }
    let mut bytes = 0u64;
    for row in rel.rows().iter() {
        let k = (hash_at(row, pos) as usize) % p;
        bytes += write_row_tsv(&mut writers[k], row)? as u64;
    }
    for mut w in writers {
        w.flush()?;
    }
    Ok((guards, bytes))
}

fn read_partition(f: &TempFile, arity: usize) -> std::io::Result<Vec<Row>> {
    let reader = BufReader::new(File::open(&f.path)?);
    read_rows_tsv(reader, arity).map_err(|e| std::io::Error::other(e.to_string()))
}

/// Grace-hash join `left ⋈ right` through `partitions` temp-file partition
/// pairs, holding at most one pair's rows in memory at a time (beyond the
/// operands themselves, which the caller already owns).
///
/// Produces exactly the relation the in-memory [`super::join`] would — the
/// differential suite holds the two paths against each other — plus the
/// spill statistics. An I/O failure (temp dir full, disk gone) surfaces as
/// `Err` so the caller can fall back to the in-memory path instead of
/// losing the query.
///
/// With an empty join key there is nothing to partition on (every row of a
/// Cartesian product would land in one partition); the certificate-driven
/// caller keeps such statements in memory, and this degenerates gracefully
/// to the ordinary join with zeroed stats.
pub fn grace_hash_join(
    left: &Relation,
    right: &Relation,
    partitions: usize,
) -> std::io::Result<(Relation, SpillStats)> {
    let (lpos, rpos) = join_key_positions(left.schema(), right.schema());
    if lpos.is_empty() {
        return Ok((super::join(left, right), SpillStats::default()));
    }
    let p = partitions.max(1);
    let out_schema = left.schema().union(right.schema());
    let (lfiles, lbytes) = partition_to_disk(left, &lpos, p)?;
    let (rfiles, rbytes) = partition_to_disk(right, &rpos, p)?;
    let (larity, rarity) = (left.schema().arity(), right.schema().arity());
    let mut out_rows: Vec<Row> = Vec::new();
    for k in 0..p {
        let lrows = read_partition(&lfiles[k], larity)?;
        if lrows.is_empty() {
            continue;
        }
        let rrows = read_partition(&rfiles[k], rarity)?;
        if rrows.is_empty() {
            continue;
        }
        let lrefs: Vec<&Row> = lrows.iter().collect();
        let rrefs: Vec<&Row> = rrows.iter().collect();
        out_rows.extend(hash_join_rows(
            left.schema(),
            &lrefs,
            right.schema(),
            &rrefs,
            &out_schema,
        ));
    }
    let rel = Relation::from_distinct_rows(out_schema, out_rows);
    Ok((
        rel,
        SpillStats {
            partitions: p as u64,
            spilled_bytes: lbytes + rbytes,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::super::join;
    use super::*;
    use crate::attr::Catalog;
    use crate::relation_of_ints;
    use crate::schema::Schema;
    use crate::value::Value;

    #[test]
    fn spill_matches_in_memory_join_at_every_partition_count() {
        let mut c = Catalog::new();
        let r_rows: Vec<Vec<i64>> = (0..60).map(|i| vec![i, i % 7]).collect();
        let s_rows: Vec<Vec<i64>> = (0..40).map(|i| vec![i % 7, i * 3]).collect();
        let rr: Vec<&[i64]> = r_rows.iter().map(Vec::as_slice).collect();
        let sr: Vec<&[i64]> = s_rows.iter().map(Vec::as_slice).collect();
        let r = relation_of_ints(&mut c, "AB", &rr).unwrap();
        let s = relation_of_ints(&mut c, "BC", &sr).unwrap();
        let expect = join(&r, &s);
        for p in [1usize, 2, 4, 8, 16] {
            let (got, stats) = grace_hash_join(&r, &s, p).unwrap();
            assert_eq!(got, expect, "diverged at {p} partitions");
            assert_eq!(stats.partitions, p as u64);
            assert!(stats.spilled_bytes > 0);
        }
    }

    #[test]
    fn hostile_strings_survive_the_disk_roundtrip() {
        let mut c = Catalog::new();
        let ab = Schema::from_chars(&mut c, "AB");
        let bc = Schema::from_chars(&mut c, "BC");
        let hostile = ["tab\there", "line\nbreak", "007", "", "  padded  "];
        let lrows = hostile
            .iter()
            .enumerate()
            .map(|(i, s)| vec![Value::Int(i as i64), Value::str(*s)].into())
            .collect();
        let rrows = hostile
            .iter()
            .map(|s| vec![Value::str(*s), Value::str(format!("v:{s}"))].into())
            .collect();
        let l = Relation::from_rows(ab, lrows).unwrap();
        let r = Relation::from_rows(bc, rrows).unwrap();
        let expect = join(&l, &r);
        assert_eq!(expect.len(), hostile.len());
        let (got, _) = grace_hash_join(&l, &r, 4).unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_side_yields_empty() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let empty = Relation::empty(Schema::from_chars(&mut c, "BC"));
        let (got, stats) = grace_hash_join(&r, &empty, 4).unwrap();
        assert!(got.is_empty());
        assert_eq!(got.schema().arity(), 3);
        assert_eq!(stats.partitions, 4);
    }

    #[test]
    fn disjoint_schemas_degenerate_to_plain_join() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "A", &[&[1], &[2]]).unwrap();
        let s = relation_of_ints(&mut c, "B", &[&[10], &[20]]).unwrap();
        let (got, stats) = grace_hash_join(&r, &s, 4).unwrap();
        assert_eq!(got, join(&r, &s));
        assert_eq!(stats, SpillStats::default(), "no partitioning happened");
    }

    #[test]
    fn temp_files_are_removed_on_drop() {
        let (guard, mut w) = TempFile::create().unwrap();
        w.write_all(b"1\t2\n").unwrap();
        w.flush().unwrap();
        drop(w);
        let path = guard.path.clone();
        assert!(path.exists());
        drop(guard);
        assert!(!path.exists(), "spill file leaked: {}", path.display());
    }
}
