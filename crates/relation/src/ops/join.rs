//! Natural join (`⋈`), the paper's central operator.

use super::hashtable::RawTable;
use super::{hash_at, keys_eq};
use crate::relation::{Relation, Row};
use crate::schema::Schema;

/// The positions, in `left` and `right`, of their shared attributes (the
/// natural-join key), in the shared attributes' canonical order.
pub fn join_key_positions(left: &Schema, right: &Schema) -> (Vec<usize>, Vec<usize>) {
    let common = left.intersect(right);
    let lpos = left
        .positions_of(common.attrs())
        .expect("common attrs are in left schema");
    let rpos = right
        .positions_of(common.attrs())
        .expect("common attrs are in right schema");
    (lpos, rpos)
}

/// Natural join `left ⋈ right`.
///
/// If the schemas share no attributes this degenerates to the Cartesian
/// product — exactly the case the paper's CPF heuristic avoids, but which the
/// evaluator must still support in order to *cost* non-CPF join expressions
/// (e.g. the optimal expression of Example 3).
///
/// The output is a set without explicit deduplication: an output row
/// restricted to `left`'s attributes is the contributing left row and
/// likewise for `right`, so distinct input pairs produce distinct outputs.
///
/// Dispatches on the process [`super::layout`]: the columnar engine hashes
/// key columns batch-wise and late-materializes output columns from
/// selection vectors; the row engine is the tuple-at-a-time baseline.
pub fn join(left: &Relation, right: &Relation) -> Relation {
    if super::layout() == super::Layout::Columnar {
        return super::columnar::col_join(left, right);
    }
    super::columnar::count_row_path();
    let out_schema = left.schema().union(right.schema());
    let lrows: Vec<&Row> = left.rows().iter().collect();
    let rrows: Vec<&Row> = right.rows().iter().collect();
    let out_rows = hash_join_rows(left.schema(), &lrows, right.schema(), &rrows, &out_schema);
    Relation::from_distinct_rows(out_schema, out_rows)
}

/// Where an output column comes from when splicing a build row with a probe
/// row. Probe-side columns win ties (key attributes are equal anyway).
#[derive(Clone, Copy)]
enum Src {
    Build(usize),
    Probe(usize),
}

/// A built hash-join: the build side's table plus the splice plan, ready to
/// be probed — once, by the sequential [`join`], or concurrently over probe
/// chunks by [`super::par_join`] (the table is read-only during probing, so
/// sharing it across pool tasks is safe).
pub(crate) struct JoinKernel<'a> {
    build: &'a [&'a Row],
    plan: Vec<Src>,
    bpos: Vec<usize>,
    ppos: Vec<usize>,
    table: RawTable,
}

impl<'a> JoinKernel<'a> {
    pub(crate) fn new(
        build_schema: &Schema,
        build: &'a [&'a Row],
        probe_schema: &Schema,
        out_schema: &Schema,
    ) -> Self {
        let (bpos, ppos) = join_key_positions(build_schema, probe_schema);
        let plan: Vec<Src> = out_schema
            .attrs()
            .iter()
            .map(|&a| match probe_schema.position(a) {
                Some(p) => Src::Probe(p),
                None => Src::Build(build_schema.position(a).expect("attr from one side")),
            })
            .collect();
        // Precomputed-hash entries over the borrowed build rows — no
        // per-row key materialization; duplicate keys chain in one bucket.
        let mut table = RawTable::with_capacity(build.len());
        for (i, row) in build.iter().enumerate() {
            table.insert(hash_at(row, &bpos), i as u32);
        }
        JoinKernel {
            build,
            plan,
            bpos,
            ppos,
            table,
        }
    }

    /// Join every row of `prows` against the built table. Probing hashes
    /// the probe row in place and verifies candidates positionally — no
    /// key allocation per probe row either.
    pub(crate) fn probe_rows<'r>(&self, prows: impl IntoIterator<Item = &'r Row>) -> Vec<Row> {
        let mut out_rows: Vec<Row> = Vec::new();
        for prow in prows {
            for bi in self.table.candidates(hash_at(prow, &self.ppos)) {
                let brow = &self.build[bi];
                if !keys_eq(brow, &self.bpos, prow, &self.ppos) {
                    continue;
                }
                let row: Row = self
                    .plan
                    .iter()
                    .map(|src| match *src {
                        Src::Build(p) => brow[p].clone(),
                        Src::Probe(p) => prow[p].clone(),
                    })
                    .collect();
                out_rows.push(row);
            }
        }
        out_rows
    }
}

/// The hash-join kernel on borrowed rows: joins `lrows` (over `lschema`)
/// with `rrows` (over `rschema`) into rows of `out_schema`, building on the
/// smaller side.
///
/// Shared by [`join`] and by the partitioned [`super::par_join`], whose
/// partitions borrow from the input relations instead of copying them —
/// key-disjoint partitions can each run this kernel and concatenate.
pub(crate) fn hash_join_rows(
    lschema: &Schema,
    lrows: &[&Row],
    rschema: &Schema,
    rrows: &[&Row],
    out_schema: &Schema,
) -> Vec<Row> {
    let (build_schema, build, probe_schema, probe) = if lrows.len() <= rrows.len() {
        (lschema, lrows, rschema, rrows)
    } else {
        (rschema, rrows, lschema, lrows)
    };
    JoinKernel::new(build_schema, build, probe_schema, out_schema).probe_rows(probe.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::error::Result;
    use crate::value::Value;

    fn rel(c: &mut Catalog, scheme: &str, tuples: &[&[i64]]) -> Result<Relation> {
        let schema = Schema::from_chars(c, scheme);
        Relation::from_tuples(
            schema,
            tuples
                .iter()
                .map(|t| t.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
    }

    #[test]
    fn join_on_shared_attribute() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20]]).unwrap();
        let s = rel(&mut c, "BC", &[&[10, 100], &[10, 101], &[30, 300]]).unwrap();
        let j = join(&r, &s);
        assert_eq!(j.schema().display(&c).to_string(), "ABC");
        assert_eq!(j.len(), 2);
        assert!(j.contains_row(&[Value::Int(1), Value::Int(10), Value::Int(100)]));
        assert!(j.contains_row(&[Value::Int(1), Value::Int(10), Value::Int(101)]));
    }

    #[test]
    fn join_is_commutative_as_sets() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 20]]).unwrap();
        let s = rel(&mut c, "BC", &[&[20, 5], &[20, 6]]).unwrap();
        assert_eq!(join(&r, &s), join(&s, &r));
    }

    #[test]
    fn disjoint_schemas_yield_cartesian_product() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "A", &[&[1], &[2]]).unwrap();
        let s = rel(&mut c, "B", &[&[10], &[20], &[30]]).unwrap();
        let j = join(&r, &s);
        assert_eq!(j.len(), 6);
        assert_eq!(j.schema().display(&c).to_string(), "AB");
    }

    #[test]
    fn same_schema_join_is_intersection() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        let s = rel(&mut c, "AB", &[&[3, 4], &[5, 6]]).unwrap();
        let j = join(&r, &s);
        assert_eq!(j.len(), 1);
        assert!(j.contains_row(&[Value::Int(3), Value::Int(4)]));
    }

    #[test]
    fn join_with_empty_is_empty() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2]]).unwrap();
        let empty = Relation::empty(Schema::from_chars(&mut c, "BC"));
        assert!(join(&r, &empty).is_empty());
        assert!(join(&empty, &r).is_empty());
    }

    #[test]
    fn nullary_unit_is_identity() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        let u = Relation::nullary_unit();
        assert_eq!(join(&r, &u), r);
        assert_eq!(join(&u, &r), r);
    }

    #[test]
    fn multi_attribute_key() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "ABC", &[&[1, 2, 3], &[1, 2, 4], &[9, 9, 9]]).unwrap();
        let s = rel(&mut c, "BCD", &[&[2, 3, 7], &[2, 4, 8]]).unwrap();
        let j = join(&r, &s);
        assert_eq!(j.len(), 2);
        assert!(j.contains_row(&[Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(7)]));
    }

    #[test]
    fn build_side_choice_does_not_change_result() {
        let mut c = Catalog::new();
        // left bigger than right, then vice versa
        let big = rel(&mut c, "AB", &[&[1, 1], &[2, 1], &[3, 2], &[4, 2]]).unwrap();
        let small = rel(&mut c, "BC", &[&[1, 7]]).unwrap();
        let j1 = join(&big, &small);
        let j2 = join(&small, &big);
        assert_eq!(j1, j2);
        assert_eq!(j1.len(), 2);
    }
}
