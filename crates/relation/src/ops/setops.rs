//! Set operations over relations with identical schemas.

use crate::error::{Error, Result};
use crate::fxhash::FxHashSet;
use crate::relation::{Relation, Row};

fn require_same_schema(left: &Relation, right: &Relation) -> Result<()> {
    if left.schema() != right.schema() {
        return Err(Error::Parse(format!(
            "set operation requires identical schemas ({} vs {} attributes)",
            left.schema().arity(),
            right.schema().arity()
        )));
    }
    Ok(())
}

/// Set union `left ∪ right`.
pub fn union(left: &Relation, right: &Relation) -> Result<Relation> {
    require_same_schema(left, right)?;
    if super::layout() == super::Layout::Columnar {
        return Ok(super::columnar::col_union(left, right));
    }
    super::columnar::count_row_path();
    let mut seen: FxHashSet<Row> = left.rows().iter().cloned().collect();
    let mut rows: Vec<Row> = left.rows().to_vec();
    for row in right.rows() {
        if seen.insert(row.clone()) {
            rows.push(row.clone());
        }
    }
    Ok(Relation::from_distinct_rows(left.schema().clone(), rows))
}

/// Set difference `left − right`.
pub fn difference(left: &Relation, right: &Relation) -> Result<Relation> {
    require_same_schema(left, right)?;
    if super::layout() == super::Layout::Columnar {
        return Ok(super::columnar::col_diff_inter(left, right, false));
    }
    super::columnar::count_row_path();
    let exclude: FxHashSet<&Row> = right.rows().iter().collect();
    let rows: Vec<Row> = left
        .rows()
        .iter()
        .filter(|r| !exclude.contains(*r))
        .cloned()
        .collect();
    Ok(Relation::from_distinct_rows(left.schema().clone(), rows))
}

/// Set intersection `left ∩ right`.
pub fn intersection(left: &Relation, right: &Relation) -> Result<Relation> {
    require_same_schema(left, right)?;
    if super::layout() == super::Layout::Columnar {
        return Ok(super::columnar::col_diff_inter(left, right, true));
    }
    super::columnar::count_row_path();
    let keep: FxHashSet<&Row> = right.rows().iter().collect();
    let rows: Vec<Row> = left
        .rows()
        .iter()
        .filter(|r| keep.contains(*r))
        .cloned()
        .collect();
    Ok(Relation::from_distinct_rows(left.schema().clone(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::schema::Schema;
    use crate::value::Value;

    fn rel(c: &mut Catalog, scheme: &str, tuples: &[&[i64]]) -> Relation {
        let schema = Schema::from_chars(c, scheme);
        Relation::from_tuples(
            schema,
            tuples
                .iter()
                .map(|t| t.iter().map(|&v| Value::Int(v)).collect())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn union_dedups() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2], &[3, 4]]);
        let s = rel(&mut c, "AB", &[&[3, 4], &[5, 6]]);
        let u = union(&r, &s).unwrap();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn difference_and_intersection() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2], &[3, 4]]);
        let s = rel(&mut c, "AB", &[&[3, 4], &[5, 6]]);
        let d = difference(&r, &s).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d.contains_row(&[Value::Int(1), Value::Int(2)]));
        let i = intersection(&r, &s).unwrap();
        assert_eq!(i.len(), 1);
        assert!(i.contains_row(&[Value::Int(3), Value::Int(4)]));
    }

    #[test]
    fn schema_mismatch_errors() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2]]);
        let s = rel(&mut c, "AC", &[&[1, 2]]);
        assert!(union(&r, &s).is_err());
        assert!(difference(&r, &s).is_err());
        assert!(intersection(&r, &s).is_err());
    }

    #[test]
    fn algebraic_identities() {
        let mut c = Catalog::new();
        let r = rel(&mut c, "A", &[&[1], &[2]]);
        let empty = Relation::empty(r.schema().clone());
        assert_eq!(union(&r, &empty).unwrap(), r);
        assert_eq!(difference(&r, &empty).unwrap(), r);
        assert_eq!(intersection(&r, &empty).unwrap(), empty);
        assert_eq!(difference(&r, &r).unwrap(), empty);
        assert_eq!(intersection(&r, &r).unwrap(), r);
    }
}
