//! Attribute renaming (`ρ`), completing the SPJR algebra.
//!
//! Natural join identifies columns by attribute identity, so renaming is how
//! a user points two relations' columns at each other (or apart). The
//! paper's algorithms never rename — their schemes are fixed — but a usable
//! relational substrate needs it (e.g. self-joins in the examples).

use crate::attr::AttrId;
use crate::error::{Error, Result};
use crate::relation::{Relation, Row};
use crate::schema::Schema;

/// Rename attributes of `rel` according to `(from, to)` pairs.
///
/// Every `from` must be in the schema; attributes not mentioned are kept.
/// The resulting attribute set must not collapse two columns into one
/// (renaming is a bijection on the schema).
pub fn rename(rel: &Relation, mapping: &[(AttrId, AttrId)]) -> Result<Relation> {
    for (from, _) in mapping {
        if !rel.schema().contains(*from) {
            return Err(Error::AttributeNotInSchema(from.to_string()));
        }
    }
    let lookup = |a: AttrId| -> AttrId {
        mapping
            .iter()
            .find(|(from, _)| *from == a)
            .map_or(a, |&(_, to)| to)
    };
    let new_attrs: Vec<AttrId> = rel.schema().attrs().iter().map(|&a| lookup(a)).collect();
    let new_schema = Schema::new(new_attrs.clone());
    if new_schema.arity() != rel.schema().arity() {
        return Err(Error::Parse(
            "rename would merge two attributes into one".to_string(),
        ));
    }
    // Rows must be permuted into the new schema's canonical order.
    let perm: Vec<usize> = new_schema
        .attrs()
        .iter()
        .map(|&na| {
            new_attrs
                .iter()
                .position(|&x| x == na)
                .expect("bijective rename")
        })
        .collect();
    if super::layout() == super::Layout::Columnar {
        return Ok(super::columnar::col_rename(rel, &new_schema, &perm));
    }
    super::columnar::count_row_path();
    let rows: Vec<Row> = rel
        .rows()
        .iter()
        .map(|row| perm.iter().map(|&p| row[p].clone()).collect())
        .collect();
    Ok(Relation::from_distinct_rows(new_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::ops::join;
    use crate::relation_of_ints;
    use crate::value::Value;

    #[test]
    fn rename_changes_schema_keeps_data() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        let b = c.lookup("B").unwrap();
        let z = c.intern("Z");
        let renamed = rename(&r, &[(b, z)]).unwrap();
        assert_eq!(renamed.schema().display(&c).to_string(), "AZ");
        assert_eq!(renamed.len(), 2);
        assert!(renamed.contains_row(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn rename_reorders_canonically() {
        let mut c = Catalog::new();
        // Rename A (id 0) to Z (a later id): column must move to the end.
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let a = c.lookup("A").unwrap();
        let z = c.intern("Z");
        let renamed = rename(&r, &[(a, z)]).unwrap();
        assert_eq!(renamed.schema().display(&c).to_string(), "BZ");
        // Canonical order is now (B, Z) = (2, 1).
        assert!(renamed.contains_row(&[Value::Int(2), Value::Int(1)]));
    }

    #[test]
    fn self_join_via_rename() {
        // Edges E(A,B); compute 2-paths by joining E with ρ_{A→B,B→C}(E).
        let mut c = Catalog::new();
        let e = relation_of_ints(&mut c, "AB", &[&[1, 2], &[2, 3], &[3, 4]]).unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let cc = c.intern("C");
        let shifted = rename(&e, &[(a, b), (b, cc)]).unwrap();
        let paths = join(&e, &shifted);
        assert_eq!(paths.len(), 2); // 1→2→3 and 2→3→4
        assert!(paths.contains_row(&[Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn swap_two_attributes() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let swapped = rename(&r, &[(a, b), (b, a)]).unwrap();
        assert_eq!(swapped.schema(), r.schema());
        assert!(swapped.contains_row(&[Value::Int(2), Value::Int(1)]));
    }

    #[test]
    fn errors() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let z = c.intern("Z");
        // Unknown source attribute.
        assert!(rename(&r, &[(z, a)]).is_err());
        // Collapsing A onto B.
        assert!(rename(&r, &[(a, b)]).is_err());
    }
}
