//! Partitioned parallel hash join.
//!
//! Classic radix-style parallelism: both inputs are partitioned by the hash
//! of their natural-join key, partitions are joined independently on scoped
//! threads, and the partition outputs are concatenated. Because partitions
//! are key-disjoint, the union of the partition joins *is* the join, and the
//! outputs are disjoint (no deduplication needed). Semantically identical to
//! [`super::join`]; the test suite checks them against each other.

use super::join::{join, join_key_positions};
use crate::fxhash::FxBuildHasher;
use crate::relation::{Relation, Row};
use std::hash::{BuildHasher, Hash, Hasher};

/// Parallel natural join over `threads` partitions (clamped to ≥ 1).
///
/// Falls back to the sequential join when either input is small (the
/// partitioning overhead dominates below a few thousand rows) or when the
/// join is a Cartesian product (there is no key to partition on; the probe
/// side is chunked instead).
pub fn par_join(left: &Relation, right: &Relation, threads: usize) -> Relation {
    let threads = threads.max(1);
    const SMALL: usize = 4096;
    if threads == 1 || (left.len() < SMALL && right.len() < SMALL) {
        return join(left, right);
    }
    let (lkey, rkey) = join_key_positions(left.schema(), right.schema());
    if lkey.is_empty() {
        return par_cartesian(left, right, threads);
    }

    let hash_row = |row: &Row, positions: &[usize]| -> usize {
        let mut h = FxBuildHasher::default().build_hasher();
        for &p in positions {
            row[p].hash(&mut h);
        }
        (h.finish() as usize) % threads
    };

    let partition = |rel: &Relation, positions: &[usize]| -> Vec<Vec<Row>> {
        let mut parts: Vec<Vec<Row>> = vec![Vec::new(); threads];
        for row in rel.rows() {
            parts[hash_row(row, positions)].push(row.clone());
        }
        parts
    };

    let lparts = partition(left, &lkey);
    let rparts = partition(right, &rkey);
    let lschema = left.schema().clone();
    let rschema = right.schema().clone();

    let mut outputs: Vec<Vec<Row>> = Vec::with_capacity(threads);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = lparts
            .into_iter()
            .zip(rparts)
            .map(|(lp, rp)| {
                let lschema = lschema.clone();
                let rschema = rschema.clone();
                scope.spawn(move |_| {
                    let l = Relation::from_distinct_rows(lschema, lp);
                    let r = Relation::from_distinct_rows(rschema, rp);
                    join(&l, &r).into_rows()
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("partition join panicked"));
        }
    })
    .expect("thread scope");

    let out_schema = left.schema().union(right.schema());
    let rows: Vec<Row> = outputs.into_iter().flatten().collect();
    Relation::from_distinct_rows(out_schema, rows)
}

/// Cartesian product with the probe side chunked across threads.
fn par_cartesian(left: &Relation, right: &Relation, threads: usize) -> Relation {
    let (build, probe) = if left.len() <= right.len() {
        (left, right)
    } else {
        (right, left)
    };
    let chunk = probe.len().div_ceil(threads).max(1);
    let out_schema = left.schema().union(right.schema());
    let mut outputs: Vec<Vec<Row>> = Vec::new();
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = probe
            .rows()
            .chunks(chunk)
            .map(|rows| {
                let pschema = probe.schema().clone();
                scope.spawn(move |_| {
                    let part = Relation::from_distinct_rows(pschema, rows.to_vec());
                    join(build, &part).into_rows()
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().expect("cartesian chunk panicked"));
        }
    })
    .expect("thread scope");
    Relation::from_distinct_rows(out_schema, outputs.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::relation_of_ints;
    use crate::schema::Schema;
    use crate::value::Value;

    fn big(c: &mut Catalog, scheme: &str, n: i64, fanout: i64) -> Relation {
        let schema = Schema::from_chars(c, scheme);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i % fanout), Value::Int(i)].into())
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn agrees_with_sequential_join_large() {
        let mut c = Catalog::new();
        let r = big(&mut c, "AB", 6000, 500);
        let s = big(&mut c, "AC", 6000, 500);
        let seq = join(&r, &s);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_join(&r, &s, threads), seq, "threads = {threads}");
        }
    }

    #[test]
    fn small_inputs_take_fallback() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 5]]).unwrap();
        assert_eq!(par_join(&r, &s, 8), join(&r, &s));
    }

    #[test]
    fn parallel_cartesian_product() {
        let mut c = Catalog::new();
        let schema_a = Schema::from_chars(&mut c, "A");
        let schema_b = Schema::from_chars(&mut c, "B");
        let r = Relation::from_rows(
            schema_a,
            (0..5000).map(|i| vec![Value::Int(i)].into()).collect(),
        )
        .unwrap();
        let s = Relation::from_rows(
            schema_b,
            (0..3).map(|i| vec![Value::Int(i)].into()).collect(),
        )
        .unwrap();
        let p = par_join(&r, &s, 4);
        assert_eq!(p.len(), 15000);
        assert_eq!(p, join(&r, &s));
    }

    #[test]
    fn empty_side() {
        let mut c = Catalog::new();
        let r = big(&mut c, "AB", 6000, 10);
        let empty = Relation::empty(Schema::from_chars(&mut c, "BC"));
        assert!(par_join(&r, &empty, 4).is_empty());
    }
}
