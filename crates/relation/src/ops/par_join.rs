//! Partitioned parallel hash join on the shared operator pool.
//!
//! Two strategies, chosen by build-side size:
//!
//! * **Shared-table chunked probe** (build side below [`SMALL`]): build the
//!   hash table once, sequentially, then probe contiguous chunks of the big
//!   side concurrently against the shared read-only table. No partitioning
//!   pass touches the probed side at all, so the per-tuple overhead versus
//!   the sequential join is essentially zero.
//! * **Radix-style co-partitioning** (both sides large): both inputs are
//!   partitioned by the hash of their natural-join key and the partitions
//!   are joined independently, parallelizing the *build* as well as the
//!   probe. Because partitions are key-disjoint, the union of the partition
//!   joins *is* the join, and the outputs are disjoint (no deduplication
//!   needed).
//!
//! Semantically both are identical to [`super::join`]; the test suite
//! checks them against each other.
//!
//! Unlike the earlier crossbeam-scoped version, partitioning is zero-copy:
//! the partitions hold `&Row` borrows into the input relations, and only the
//! joined output rows are materialized. Output row *order* is deterministic
//! for a given `threads` value (chunks/partitions are concatenated in index
//! order) but differs across thread counts; `Relation` equality is
//! order-blind.

use super::join::{hash_join_rows, join, join_key_positions, JoinKernel};
use super::{columnar, hash_partition, layout, par_cutoff, Layout};
use crate::relation::{Relation, Row};

/// Parallel natural join over `threads` partitions (clamped to ≥ 1), with
/// the process-wide [`par_cutoff`] deciding the sequential fallback.
///
/// Falls back to the sequential join when either input is small (the
/// partitioning overhead dominates below a few thousand rows); Cartesian
/// products (no key to partition on) always take the chunked-probe path.
pub fn par_join(left: &Relation, right: &Relation, threads: usize) -> Relation {
    par_join_cutoff(left, right, threads, par_cutoff())
}

/// [`par_join`] with an explicit parallel/sequential cutoff in rows (the
/// knob `ExecConfig::par_cutoff` threads through the executor).
pub fn par_join_cutoff(
    left: &Relation,
    right: &Relation,
    threads: usize,
    cutoff: usize,
) -> Relation {
    let threads = threads.max(1);
    let mut sp = mjoin_trace::span("op", "join");
    if sp.is_active() {
        sp.arg("left_rows", left.len());
        sp.arg("right_rows", right.len());
        sp.arg("threads", threads);
    }
    if threads == 1 || (left.len() < cutoff && right.len() < cutoff) {
        let out = join(left, right);
        sp.arg("strategy", "sequential");
        sp.arg("out_rows", out.len());
        return out;
    }
    let (build, probe) = if left.len() <= right.len() {
        (left, right)
    } else {
        (right, left)
    };
    let (lkey, rkey) = join_key_positions(left.schema(), right.schema());
    if build.len() < cutoff || lkey.is_empty() {
        let out = if layout() == Layout::Columnar {
            columnar::col_join_chunked(build, probe, threads)
        } else {
            columnar::count_row_path();
            chunked_probe_join(build, probe, threads)
        };
        sp.arg("strategy", "shared_build_probe");
        sp.arg("build_rows", build.len());
        sp.arg("probe_rows", probe.len());
        sp.arg("out_rows", out.len());
        return out;
    }

    if layout() == Layout::Columnar {
        let out = columnar::col_join_radix(left, right, threads);
        sp.arg("strategy", "radix_copartition");
        sp.arg("partitions", threads);
        sp.arg("out_rows", out.len());
        return out;
    }
    columnar::count_row_path();
    let out_schema = left.schema().union(right.schema());
    let lparts = hash_partition(left.rows(), &lkey, threads);
    let rparts = hash_partition(right.rows(), &rkey, threads);
    let pairs: Vec<(Vec<&Row>, Vec<&Row>)> = lparts.into_iter().zip(rparts).collect();
    let partitions = pairs.len();

    let outputs = mjoin_pool::par_map(pairs, |(lp, rp)| {
        hash_join_rows(left.schema(), &lp, right.schema(), &rp, &out_schema)
    });

    let out = Relation::from_distinct_rows(out_schema, outputs.into_iter().flatten().collect());
    sp.arg("strategy", "radix_copartition");
    sp.arg("partitions", partitions);
    sp.arg("out_rows", out.len());
    out
}

/// Build once on `build` (the smaller side), then probe contiguous chunks
/// of `probe` concurrently against the shared read-only table. Also the
/// Cartesian-product path: with no join key, every row maps to the empty
/// key, so each probe row matches all build rows.
fn chunked_probe_join(build: &Relation, probe: &Relation, threads: usize) -> Relation {
    let out_schema = build.schema().union(probe.schema());
    let brows: Vec<&Row> = build.rows().iter().collect();
    let kernel = JoinKernel::new(build.schema(), &brows, probe.schema(), &out_schema);

    let outputs = mjoin_pool::par_map_slices(probe.rows(), threads, |_, chunk| {
        kernel.probe_rows(chunk.iter())
    });

    Relation::from_distinct_rows(out_schema, outputs.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::relation_of_ints;
    use crate::schema::Schema;
    use crate::value::Value;

    fn big(c: &mut Catalog, scheme: &str, n: i64, fanout: i64) -> Relation {
        let schema = Schema::from_chars(c, scheme);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i % fanout), Value::Int(i)].into())
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn agrees_with_sequential_join_large() {
        let mut c = Catalog::new();
        let r = big(&mut c, "AB", 6000, 500);
        let s = big(&mut c, "AC", 6000, 500);
        let seq = join(&r, &s);
        for threads in [1, 2, 4, 7] {
            assert_eq!(par_join(&r, &s, threads), seq, "threads = {threads}");
        }
    }

    #[test]
    fn small_inputs_take_fallback() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[2, 5]]).unwrap();
        assert_eq!(par_join(&r, &s, 8), join(&r, &s));
    }

    #[test]
    fn explicit_cutoff_zero_forces_parallel_paths() {
        // Tiny inputs driven down the partitioned paths must still agree
        // with the sequential join.
        let mut c = Catalog::new();
        let r = big(&mut c, "AB", 300, 20);
        let s = big(&mut c, "AC", 200, 20);
        let seq = join(&r, &s);
        assert_eq!(par_join_cutoff(&r, &s, 4, 0), seq);
        // A huge cutoff forces the sequential path regardless of size.
        assert_eq!(par_join_cutoff(&r, &s, 4, usize::MAX), seq);
    }

    #[test]
    fn global_cutoff_roundtrip() {
        let before = super::super::par_cutoff();
        super::super::set_par_cutoff(7);
        assert_eq!(super::super::par_cutoff(), 7);
        super::super::set_par_cutoff(before);
        assert_eq!(super::super::par_cutoff(), before);
    }

    #[test]
    fn parallel_cartesian_product() {
        let mut c = Catalog::new();
        let schema_a = Schema::from_chars(&mut c, "A");
        let schema_b = Schema::from_chars(&mut c, "B");
        let r = Relation::from_rows(
            schema_a,
            (0..5000).map(|i| vec![Value::Int(i)].into()).collect(),
        )
        .unwrap();
        let s = Relation::from_rows(
            schema_b,
            (0..3).map(|i| vec![Value::Int(i)].into()).collect(),
        )
        .unwrap();
        let p = par_join(&r, &s, 4);
        assert_eq!(p.len(), 15000);
        assert_eq!(p, join(&r, &s));
    }

    #[test]
    fn empty_side() {
        let mut c = Catalog::new();
        let r = big(&mut c, "AB", 6000, 10);
        let empty = Relation::empty(Schema::from_chars(&mut c, "BC"));
        assert!(par_join(&r, &empty, 4).is_empty());
    }

    #[test]
    fn multi_attribute_key_agrees() {
        let mut c = Catalog::new();
        let schema_l = Schema::from_chars(&mut c, "ABX");
        let schema_r = Schema::from_chars(&mut c, "ABY");
        let mk = |schema: Schema, n: i64| {
            Relation::from_rows(
                schema,
                (0..n)
                    .map(|i| vec![Value::Int(i % 40), Value::Int(i % 70), Value::Int(i)].into())
                    .collect(),
            )
            .unwrap()
        };
        let l = mk(schema_l, 6000);
        let r = mk(schema_r, 5000);
        assert_eq!(par_join(&l, &r, 4), join(&l, &r));
    }
}
