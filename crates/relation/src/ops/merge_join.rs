//! Sort-merge natural join: an alternative to the hash join with identical
//! semantics.
//!
//! The paper's cost model is implementation-agnostic ("when this cost is `n`
//! the cost of the actual best possible method is no more than
//! `O(n log n)`" — which is exactly sort-merge). Having two independent
//! implementations also gives the test suite a differential oracle: every
//! join computed both ways must agree.

use super::join::join_key_positions;
use crate::relation::{Relation, Row};
use crate::value::Value;
use std::cmp::Ordering;

/// Natural join via sort-merge. Produces the same relation as
/// [`super::join`] (hash join), in `O(n log n + output)`.
pub fn merge_join(left: &Relation, right: &Relation) -> Relation {
    let (lkey, rkey) = join_key_positions(left.schema(), right.schema());
    let out_schema = left.schema().union(right.schema());

    if lkey.is_empty() {
        // Cartesian product: nothing to sort on.
        let mut rows: Vec<Row> = Vec::with_capacity(left.len() * right.len());
        let plan = splice_plan(left, right, &out_schema);
        for l in left.rows() {
            for r in right.rows() {
                rows.push(splice(l, r, &plan));
            }
        }
        return Relation::from_distinct_rows(out_schema, rows);
    }

    // Decorate-sort-undecorate: materialize each row's key once, instead of
    // re-collecting a fresh `Vec<Value>` on every comparison inside the sort
    // and again on every run-boundary probe of the merge loop (the old code
    // allocated O(n log n) transient keys; this allocates exactly n).
    let decorate = |rel: &Relation, positions: &[usize]| -> Vec<(Box<[Value]>, usize)> {
        let mut keyed: Vec<(Box<[Value]>, usize)> = rel
            .rows()
            .iter()
            .enumerate()
            .map(|(idx, row)| (positions.iter().map(|&p| row[p].clone()).collect(), idx))
            .collect();
        keyed.sort_unstable();
        keyed
    };
    let lkeyed = decorate(left, &lkey);
    let rkeyed = decorate(right, &rkey);

    let plan = splice_plan(left, right, &out_schema);
    let mut rows: Vec<Row> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lkeyed.len() && j < rkeyed.len() {
        let lk = &lkeyed[i].0;
        let rk = &rkeyed[j].0;
        match lk.cmp(rk) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                // Find the runs of equal keys on both sides.
                let i_end = (i..lkeyed.len())
                    .find(|&x| lkeyed[x].0 != *lk)
                    .unwrap_or(lkeyed.len());
                let j_end = (j..rkeyed.len())
                    .find(|&x| rkeyed[x].0 != *rk)
                    .unwrap_or(rkeyed.len());
                for (_, li) in &lkeyed[i..i_end] {
                    for (_, rj) in &rkeyed[j..j_end] {
                        rows.push(splice(&left.rows()[*li], &right.rows()[*rj], &plan));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::from_distinct_rows(out_schema, rows)
}

/// For each output column: copy from the left row at position `p` (`Left(p)`)
/// or the right row (`Right(p)`).
enum Src {
    Left(usize),
    Right(usize),
}

fn splice_plan(left: &Relation, right: &Relation, out: &crate::schema::Schema) -> Vec<Src> {
    out.attrs()
        .iter()
        .map(|&a| match left.schema().position(a) {
            Some(p) => Src::Left(p),
            None => Src::Right(right.schema().position(a).expect("attr from one side")),
        })
        .collect()
}

fn splice(l: &Row, r: &Row, plan: &[Src]) -> Row {
    plan.iter()
        .map(|src| match *src {
            Src::Left(p) => l[p].clone(),
            Src::Right(p) => r[p].clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::ops::join;
    use crate::relation_of_ints;

    #[test]
    fn agrees_with_hash_join_on_examples() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 10]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[10, 7], &[10, 8], &[99, 9]]).unwrap();
        assert_eq!(merge_join(&r, &s), join(&r, &s));
    }

    #[test]
    fn cartesian_case() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "A", &[&[1], &[2]]).unwrap();
        let s = relation_of_ints(&mut c, "B", &[&[5], &[6], &[7]]).unwrap();
        let m = merge_join(&r, &s);
        assert_eq!(m.len(), 6);
        assert_eq!(m, join(&r, &s));
    }

    #[test]
    fn duplicate_key_runs() {
        let mut c = Catalog::new();
        // 3 left rows and 2 right rows share B = 1 → 6 outputs.
        let r = relation_of_ints(&mut c, "AB", &[&[1, 1], &[2, 1], &[3, 1], &[4, 9]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[1, 10], &[1, 11]]).unwrap();
        let m = merge_join(&r, &s);
        assert_eq!(m.len(), 6);
        assert_eq!(m, join(&r, &s));
    }

    #[test]
    fn empty_inputs() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let empty = Relation::empty(r.schema().clone());
        assert!(merge_join(&r, &empty).is_empty());
        assert!(merge_join(&empty, &r).is_empty());
    }

    #[test]
    fn multi_attribute_keys() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "ABC", &[&[1, 2, 3], &[1, 2, 4], &[5, 5, 5]]).unwrap();
        let s = relation_of_ints(&mut c, "BCD", &[&[2, 3, 9], &[2, 4, 8], &[0, 0, 0]]).unwrap();
        assert_eq!(merge_join(&r, &s), join(&r, &s));
    }
}
