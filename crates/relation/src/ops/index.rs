//! `JoinIndex` — an owned, shareable build-side hash index over an
//! `Arc<Relation>`, plus the operator variants that probe one.
//!
//! Programs derived by the paper's Algorithm 2 read the same head relations
//! over and over: a full-reducer-style semijoin sweep down the CPF tree,
//! then a join sweep back up. Every such statement used to rebuild its
//! build-side hash table from scratch. A `JoinIndex` is that build table
//! made first-class: it pins the relation (`Arc<Relation>`) and the key
//! positions it was built for, so the program interpreter can memoize it
//! across statements — cache hits skip the whole build pass — and a level
//! of concurrent statements can probe one shared index instead of building
//! one table per statement.
//!
//! Probing is allocation-lean like the rest of the kernels: hashes come
//! from [`hash_at`], and collisions resolve by comparing `row[pos]` slices
//! positionally ([`keys_eq`]) — no key materialization on either side.

use super::hashtable::RawTable;
use super::join::join_key_positions;
use super::{columnar, hash_at, keys_eq, layout, par_cutoff, Layout};
use crate::relation::{Relation, Row};
use crate::value::Value;
use std::sync::Arc;

/// A build-side hash table for a `(Arc<Relation>, key positions)` pair.
///
/// The index holds the relation alive, so a raw-pointer cache key derived
/// from `Arc::as_ptr(relation)` cannot be reused by a different relation
/// while the index exists (no ABA).
#[derive(Debug)]
pub struct JoinIndex {
    rel: Arc<Relation>,
    key_pos: Box<[usize]>,
    table: RawTable,
}

impl JoinIndex {
    /// Build the index: one hash pass over the relation, no per-row key
    /// allocation. Under the columnar layout the hashes come from
    /// [`columnar::key_hashes`] (batch-wise over column slices, no row view
    /// materialized); either way the table contents are bit-identical, so an
    /// index built by one engine can be probed by the other.
    pub fn build(rel: Arc<Relation>, key_pos: Vec<usize>) -> Self {
        let mut table = RawTable::with_capacity(rel.len());
        if layout() == Layout::Columnar {
            for (i, h) in columnar::key_hashes(&rel, &key_pos).into_iter().enumerate() {
                table.insert(h, i as u32);
            }
        } else {
            for (i, row) in rel.rows().iter().enumerate() {
                table.insert(hash_at(row, &key_pos), i as u32);
            }
        }
        JoinIndex {
            rel,
            key_pos: key_pos.into(),
            table,
        }
    }

    /// The indexed relation.
    pub fn relation(&self) -> &Arc<Relation> {
        &self.rel
    }

    /// The key positions (into the indexed relation's rows) this index was
    /// built over.
    pub fn key_positions(&self) -> &[usize] {
        &self.key_pos
    }

    /// Resident tuples — what the interpreter's cache budget counts.
    pub fn tuples(&self) -> usize {
        self.rel.len()
    }

    /// Heap bytes of the table itself (excluding the shared relation): the
    /// allocation a cache hit avoids rebuilding.
    pub fn heap_bytes(&self) -> usize {
        self.table.heap_bytes()
    }

    /// Resident bytes — the table's heap plus the pinned relation's payload.
    /// With the column view materialized this is exact (packed columns plus
    /// each dictionary pool once); otherwise it is a flat per-cell estimate,
    /// so budgeting a row-engine cache never forces a layout conversion.
    pub fn resident_bytes(&self) -> usize {
        let rel_bytes = if self.rel.columns_materialized() {
            self.rel.resident_col_bytes()
        } else {
            self.rel.len() * self.rel.schema().arity() * std::mem::size_of::<Value>()
        };
        self.table.heap_bytes() + rel_bytes
    }

    /// The indexed rows matching `probe` at `probe_pos` (positionally
    /// aligned with this index's key positions).
    #[inline]
    pub fn matching<'a>(
        &'a self,
        probe: &'a Row,
        probe_pos: &'a [usize],
    ) -> impl Iterator<Item = &'a Row> + 'a {
        let rows = self.rel.rows();
        self.table
            .candidates(hash_at(probe, probe_pos))
            .map(move |i| &rows[i])
            .filter(move |brow| keys_eq(brow, &self.key_pos, probe, probe_pos))
    }

    /// Whether any indexed row matches `probe` at `probe_pos`.
    #[inline]
    pub fn contains(&self, probe: &Row, probe_pos: &[usize]) -> bool {
        self.matching(probe, probe_pos).next().is_some()
    }

    /// Columnar probe of rows `start..end` of `probe` (hashes indexed
    /// globally): matched `(build_ids, probe_ids)` selection vectors,
    /// candidates verified positionally against column data.
    fn probe_cols_range(
        &self,
        probe: &Relation,
        probe_pos: &[usize],
        probe_hashes: &[u64],
        start: usize,
        end: usize,
    ) -> (Vec<u32>, Vec<u32>) {
        let bcols = self.rel.columns();
        let pcols = probe.columns();
        let mut bids: Vec<u32> = Vec::new();
        let mut pids: Vec<u32> = Vec::new();
        for (j, &hash) in probe_hashes.iter().enumerate().take(end).skip(start) {
            for bi in self.table.candidates(hash) {
                if columnar::ids_eq(bcols, &self.key_pos, bi, pcols, probe_pos, j) {
                    bids.push(bi as u32);
                    pids.push(j as u32);
                }
            }
        }
        (bids, pids)
    }

    /// Columnar membership filter over rows `start..end` of `target`: the
    /// ids whose key matches at least one indexed row.
    fn filter_cols_range(
        &self,
        target: &Relation,
        target_pos: &[usize],
        target_hashes: &[u64],
        start: usize,
        end: usize,
    ) -> Vec<u32> {
        let bcols = self.rel.columns();
        let tcols = target.columns();
        (start..end)
            .filter(|&j| {
                self.table
                    .candidates(target_hashes[j])
                    .any(|bi| columnar::ids_eq(bcols, &self.key_pos, bi, tcols, target_pos, j))
            })
            .map(|j| j as u32)
            .collect()
    }
}

/// Where an output column comes from when splicing an indexed build row
/// with a probe row (probe wins the shared key attributes — they are equal
/// anyway).
fn splice_plan(index: &JoinIndex, probe: &Relation) -> (Vec<(bool, usize)>, Vec<usize>) {
    let build_schema = index.relation().schema();
    let out_schema = build_schema.union(probe.schema());
    let plan: Vec<(bool, usize)> = out_schema
        .attrs()
        .iter()
        .map(|&a| match probe.schema().position(a) {
            Some(p) => (false, p),
            None => (true, build_schema.position(a).expect("attr from one side")),
        })
        .collect();
    let (bpos, ppos) = join_key_positions(build_schema, probe.schema());
    debug_assert_eq!(
        &bpos,
        index.key_positions(),
        "index key positions must be the natural-join key of its relation"
    );
    (plan, ppos)
}

/// Natural join `index.relation() ⋈ probe` against a prebuilt index.
///
/// Unlike [`super::par_join`], the build side is fixed by the index — even
/// when it is the *larger* side. That is the point: with the build pass
/// already paid for (or shared across statements), probing with the smaller
/// side wins regardless of which side is bigger.
pub fn par_join_indexed(index: &JoinIndex, probe: &Relation, threads: usize) -> Relation {
    par_join_indexed_cutoff(index, probe, threads, par_cutoff())
}

/// [`par_join_indexed`] with an explicit parallel/sequential cutoff in rows.
pub fn par_join_indexed_cutoff(
    index: &JoinIndex,
    probe: &Relation,
    threads: usize,
    cutoff: usize,
) -> Relation {
    let threads = threads.max(1);
    let mut sp = mjoin_trace::span("op", "join");
    if sp.is_active() {
        sp.arg("left_rows", index.tuples());
        sp.arg("right_rows", probe.len());
        sp.arg("threads", threads);
        sp.arg("strategy", "indexed_probe");
    }
    let (plan, ppos) = splice_plan(index, probe);
    let out_schema = index.relation().schema().union(probe.schema());

    if layout() == Layout::Columnar {
        columnar::count_batch();
        let ph = columnar::key_hashes(probe, &ppos);
        let parts: Vec<(Vec<u32>, Vec<u32>)> = if threads == 1 || probe.len() < cutoff {
            vec![index.probe_cols_range(probe, &ppos, &ph, 0, probe.len())]
        } else {
            mjoin_pool::par_map(columnar::split_ranges(probe.len(), threads), |(s, e)| {
                index.probe_cols_range(probe, &ppos, &ph, s, e)
            })
        };
        let out = columnar::materialize_join(index.relation(), probe, &out_schema, &parts);
        sp.arg("out_rows", out.len());
        return out;
    }
    columnar::count_row_path();
    let probe_chunk = |chunk: &[Row]| -> Vec<Row> {
        let mut out = Vec::new();
        for prow in chunk {
            for brow in index.matching(prow, &ppos) {
                let row: Row = plan
                    .iter()
                    .map(|&(from_build, p)| {
                        if from_build {
                            brow[p].clone()
                        } else {
                            prow[p].clone()
                        }
                    })
                    .collect();
                out.push(row);
            }
        }
        out
    };

    let rows = if threads == 1 || probe.len() < cutoff {
        probe_chunk(probe.rows())
    } else {
        mjoin_pool::par_map_slices(probe.rows(), threads, |_, chunk| probe_chunk(chunk))
            .into_iter()
            .flatten()
            .collect()
    };
    let out = Relation::from_distinct_rows(out_schema, rows);
    sp.arg("out_rows", out.len());
    out
}

/// Semijoin `target ⋉ index.relation()` against a prebuilt index over the
/// filter side.
pub fn par_semijoin_indexed(target: &Relation, index: &JoinIndex, threads: usize) -> Relation {
    par_semijoin_indexed_cutoff(target, index, threads, par_cutoff())
}

/// [`par_semijoin_indexed`] with an explicit parallel/sequential cutoff.
pub fn par_semijoin_indexed_cutoff(
    target: &Relation,
    index: &JoinIndex,
    threads: usize,
    cutoff: usize,
) -> Relation {
    let threads = threads.max(1);
    let mut sp = mjoin_trace::span("op", "semijoin");
    if sp.is_active() {
        sp.arg("left_rows", target.len());
        sp.arg("right_rows", index.tuples());
        sp.arg("threads", threads);
        sp.arg("strategy", "indexed_probe");
    }
    let common = target.schema().intersect(index.relation().schema());
    let tpos = target
        .schema()
        .positions_of(common.attrs())
        .expect("common attrs in target");
    debug_assert_eq!(
        index
            .relation()
            .schema()
            .positions_of(common.attrs())
            .expect("common attrs in filter"),
        index.key_positions(),
        "index key positions must be the semijoin key of its relation"
    );

    if layout() == Layout::Columnar {
        columnar::count_batch();
        let th = columnar::key_hashes(target, &tpos);
        let ids: Vec<u32> = if threads == 1 || target.len() < cutoff {
            index.filter_cols_range(target, &tpos, &th, 0, target.len())
        } else {
            mjoin_pool::par_map(columnar::split_ranges(target.len(), threads), |(s, e)| {
                index.filter_cols_range(target, &tpos, &th, s, e)
            })
            .into_iter()
            .flatten()
            .collect()
        };
        let out = columnar::gather_relation(target, &ids);
        sp.arg("out_rows", out.len());
        return out;
    }
    columnar::count_row_path();
    let rows: Vec<Row> = if threads == 1 || target.len() < cutoff {
        target
            .rows()
            .iter()
            .filter(|row| index.contains(row, &tpos))
            .cloned()
            .collect()
    } else {
        mjoin_pool::par_map_slices(target.rows(), threads, |_, chunk| {
            chunk
                .iter()
                .filter(|row| index.contains(row, &tpos))
                .cloned()
                .collect::<Vec<Row>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };
    let out = Relation::from_distinct_rows(target.schema().clone(), rows);
    sp.arg("out_rows", out.len());
    out
}

#[cfg(test)]
mod tests {
    use super::super::{join, semijoin};
    use super::*;
    use crate::attr::Catalog;
    use crate::relation_of_ints;
    use crate::schema::Schema;
    use crate::value::Value;

    fn key_of(rel: &Relation, other: &Relation) -> Vec<usize> {
        join_key_positions(rel.schema(), other.schema()).0
    }

    #[test]
    fn indexed_join_matches_plain_join() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 20]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[20, 5], &[20, 6], &[99, 7]]).unwrap();
        let idx = JoinIndex::build(Arc::new(r.clone()), key_of(&r, &s));
        for threads in [1, 4] {
            assert_eq!(par_join_indexed(&idx, &s, threads), join(&r, &s));
        }
        // And with the index on the other (probe-heavy) side.
        let idx_s = JoinIndex::build(Arc::new(s.clone()), key_of(&s, &r));
        assert_eq!(par_join_indexed(&idx_s, &r, 2), join(&r, &s));
    }

    #[test]
    fn indexed_join_cartesian_empty_key() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "A", &[&[1], &[2]]).unwrap();
        let s = relation_of_ints(&mut c, "B", &[&[10], &[20], &[30]]).unwrap();
        let idx = JoinIndex::build(Arc::new(r.clone()), vec![]);
        let out = par_join_indexed(&idx, &s, 2);
        assert_eq!(out.len(), 6);
        assert_eq!(out, join(&r, &s));
    }

    #[test]
    fn indexed_semijoin_matches_plain_semijoin() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 10], &[2, 20], &[3, 30]]).unwrap();
        let s = relation_of_ints(&mut c, "BC", &[&[10, 0], &[10, 1], &[30, 0]]).unwrap();
        let idx = JoinIndex::build(Arc::new(s.clone()), key_of(&s, &r));
        for threads in [1, 4] {
            assert_eq!(par_semijoin_indexed(&r, &idx, threads), semijoin(&r, &s));
        }
    }

    #[test]
    fn indexed_paths_agree_on_large_inputs() {
        let mut c = Catalog::new();
        let schema_l = Schema::from_chars(&mut c, "AB");
        let schema_r = Schema::from_chars(&mut c, "BC");
        let l = Relation::from_rows(
            schema_l,
            (0..6000)
                .map(|i| vec![Value::Int(i), Value::Int(i % 700)].into())
                .collect(),
        )
        .unwrap();
        let r = Relation::from_rows(
            schema_r,
            (0..5000)
                .map(|i| vec![Value::Int(i % 350), Value::Int(i)].into())
                .collect(),
        )
        .unwrap();
        let idx = JoinIndex::build(Arc::new(l.clone()), key_of(&l, &r));
        let expect_join = join(&l, &r);
        let expect_semi = semijoin(&l, &r);
        for threads in [1, 2, 4, 8] {
            assert_eq!(par_join_indexed(&idx, &r, threads), expect_join);
            let idx_r = JoinIndex::build(Arc::new(r.clone()), key_of(&r, &l));
            assert_eq!(par_semijoin_indexed(&l, &idx_r, threads), expect_semi);
        }
    }

    #[test]
    fn index_pins_its_relation() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2]]).unwrap();
        let arc = Arc::new(r);
        let ptr = Arc::as_ptr(&arc);
        let idx = JoinIndex::build(Arc::clone(&arc), vec![0]);
        drop(arc);
        assert_eq!(Arc::as_ptr(idx.relation()), ptr);
        assert_eq!(idx.tuples(), 1);
        assert!(idx.heap_bytes() > 0);
    }
}
