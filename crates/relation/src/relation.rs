//! Relations: set-semantics collections of tuples over a [`Schema`].
//!
//! The paper's model is pure set semantics — a relation is a set of tuples —
//! and its cost measure counts tuples. `Relation` therefore maintains the
//! invariant that rows are distinct; every constructor deduplicates.

use crate::attr::Catalog;
use crate::error::{Error, Result};
use crate::fxhash::FxHashSet;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::OnceLock;

/// A tuple: values aligned positionally with the owning relation's schema.
pub type Row = Box<[Value]>;

/// A set of tuples over a fixed [`Schema`].
///
/// Row order is an implementation detail (it depends on build order and hash
/// layout); equality, hashing-free comparison and display all canonicalize by
/// sorting. Use [`Relation::sorted_rows`] when deterministic order matters.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Row>,
    /// Lazily computed [`Relation::fingerprint`]; rows are immutable after
    /// construction, so a computed value never goes stale.
    fingerprint: OnceLock<u128>,
}

impl Relation {
    /// The empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
            fingerprint: OnceLock::new(),
        }
    }

    /// The relation over the empty schema containing the single nullary
    /// tuple. It is the identity of natural join.
    pub fn nullary_unit() -> Self {
        Relation {
            schema: Schema::empty(),
            rows: vec![Box::from([])],
            fingerprint: OnceLock::new(),
        }
    }

    /// Build from rows, checking arity and removing duplicates (keeping each
    /// row's first occurrence, in order). Above the [`crate::ops::SMALL`]
    /// cutoff the deduplication runs as a parallel partition-then-merge on
    /// the shared pool; the result is byte-identical to the sequential path.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for row in &rows {
            if row.len() != schema.arity() {
                return Err(Error::ArityMismatch {
                    expected: schema.arity(),
                    got: row.len(),
                });
            }
        }
        let rows = if rows.len() < crate::ops::SMALL {
            dedup_sequential(rows)
        } else {
            dedup_parallel(rows)
        };
        Ok(Relation {
            schema,
            rows,
            fingerprint: OnceLock::new(),
        })
    }

    /// Build from `Vec<Vec<Value>>` tuples (convenience for tests/examples).
    pub fn from_tuples(schema: Schema, tuples: Vec<Vec<Value>>) -> Result<Self> {
        Self::from_rows(schema, tuples.into_iter().map(Into::into).collect())
    }

    /// Build from rows that are already known to be distinct and of the right
    /// arity (used by operators that dedup as they produce output).
    ///
    /// Debug builds verify the invariants.
    pub(crate) fn from_distinct_rows(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.arity()));
        debug_assert_eq!(
            rows.iter().collect::<FxHashSet<_>>().len(),
            rows.len(),
            "rows must be distinct"
        );
        Relation {
            schema,
            rows,
            fingerprint: OnceLock::new(),
        }
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples — `|R|` in the paper's cost model.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in unspecified order.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Consume the relation, yielding its rows (still distinct).
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// Membership test (linear scan; intended for tests and small relations).
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.rows.iter().any(|r| r.as_ref() == row)
    }

    /// The rows sorted into canonical order (for deterministic output).
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows.clone();
        rows.sort_unstable();
        rows
    }

    /// Render as an aligned table using `catalog` for the header.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> RelationDisplay<'a> {
        RelationDisplay { rel: self, catalog }
    }

    /// A cheap structural fingerprint of the relation's *content*: the tuple
    /// count combined with the xor and wrapping sum of the per-row hashes.
    /// Row-order independent, so two relations holding the same set of
    /// tuples — e.g. an original and its TSV round-trip reload — fingerprint
    /// identically even though they are distinct allocations.
    ///
    /// Computed lazily on first call and memoized (rows are immutable).
    /// This is a hash, not a proof of equality: collisions are possible,
    /// so callers deciding anything semantic should also compare schemas
    /// and accept the residual hash-collision risk (the join-index cache
    /// does, trading it for cross-`Arc` reuse).
    pub fn fingerprint(&self) -> u128 {
        *self.fingerprint.get_or_init(|| {
            use crate::fxhash::FxBuildHasher;
            use std::hash::BuildHasher;
            let hasher = FxBuildHasher::default();
            let mut xor: u64 = 0;
            let mut sum: u64 = self.rows.len() as u64;
            for row in &self.rows {
                let h = hasher.hash_one(row);
                xor ^= h;
                sum = sum.wrapping_add(h);
            }
            (u128::from(xor) << 64) | u128::from(sum)
        })
    }
}

fn dedup_sequential(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    seen.reserve(rows.len());
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

/// Partition-then-merge deduplication on the shared pool. Rows are
/// partitioned by their full-tuple hash, so duplicates always collide in the
/// same partition and per-partition dedup needs no cross-partition merge;
/// the final sort by original index restores first-occurrence order, making
/// the output byte-identical to [`dedup_sequential`].
fn dedup_parallel(rows: Vec<Row>) -> Vec<Row> {
    use crate::fxhash::FxBuildHasher;
    use std::hash::BuildHasher;

    let parts_n = mjoin_pool::current_num_threads().clamp(1, 64);
    if parts_n == 1 {
        return dedup_sequential(rows);
    }
    // One BuildHasher for the whole partition pass, not one per row.
    let hasher = FxBuildHasher::default();
    let mut parts: Vec<Vec<(usize, Row)>> = vec![Vec::new(); parts_n];
    for (i, row) in rows.into_iter().enumerate() {
        parts[(hasher.hash_one(&row) as usize) % parts_n].push((i, row));
    }
    let deduped = mjoin_pool::par_map(parts, |part| {
        let mut seen: FxHashSet<Row> = FxHashSet::default();
        seen.reserve(part.len());
        part.into_iter()
            .filter(|(_, row)| seen.insert(row.clone()))
            .collect::<Vec<_>>()
    });
    let mut all: Vec<(usize, Row)> = deduped.into_iter().flatten().collect();
    all.sort_unstable_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, row)| row).collect()
}

/// Set equality: same schema and the same set of rows, regardless of order.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.rows.len() == other.rows.len()
            && self.sorted_rows() == other.sorted_rows()
    }
}

impl Eq for Relation {}

/// Helper returned by [`Relation::display`].
pub struct RelationDisplay<'a> {
    rel: &'a Relation,
    catalog: &'a Catalog,
}

impl fmt::Display for RelationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header: Vec<String> = self
            .rel
            .schema
            .attrs()
            .iter()
            .map(|&a| self.catalog.name(a).to_string())
            .collect();
        let rows = self.rel.sorted_rows();
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(std::string::ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:w$} |")?;
            }
            writeln!(f)
        };
        line(f, &header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &rendered {
            line(f, row)?;
        }
        write!(f, "({} tuples)", self.rel.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn schema_ab() -> (Catalog, Schema) {
        let mut c = Catalog::new();
        let s = Schema::from_chars(&mut c, "AB");
        (c, s)
    }

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn from_rows_dedups() {
        let (_c, s) = schema_ab();
        let r = Relation::from_rows(s, vec![row(&[1, 2]), row(&[1, 2]), row(&[3, 4])]).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains_row(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn parallel_dedup_matches_sequential_order() {
        let (_c, s) = schema_ab();
        // Enough duplicated rows to cross the SMALL cutoff.
        let rows: Vec<Row> = (0..10_000).map(|i| row(&[i % 997, i % 31])).collect();
        let seq = dedup_sequential(rows.clone());
        let par = Relation::from_rows(s, rows).unwrap();
        assert_eq!(par.rows(), &seq[..], "first-occurrence order preserved");
    }

    #[test]
    fn arity_checked() {
        let (_c, s) = schema_ab();
        let err = Relation::from_rows(s, vec![row(&[1])]).unwrap_err();
        assert_eq!(
            err,
            Error::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn set_equality_ignores_order() {
        let (_c, s) = schema_ab();
        let r1 = Relation::from_rows(s.clone(), vec![row(&[1, 2]), row(&[3, 4])]).unwrap();
        let r2 = Relation::from_rows(s, vec![row(&[3, 4]), row(&[1, 2])]).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn inequality_on_rows_and_schema() {
        let (_c, s) = schema_ab();
        let r1 = Relation::from_rows(s.clone(), vec![row(&[1, 2])]).unwrap();
        let r2 = Relation::from_rows(s.clone(), vec![row(&[1, 3])]).unwrap();
        assert_ne!(r1, r2);
        let mut c2 = Catalog::new();
        let other_schema = Schema::from_chars(&mut c2, "AC");
        // Same ids can exist in another catalog, so compare within one.
        let _ = other_schema;
        assert_ne!(r1, Relation::empty(s));
    }

    #[test]
    fn nullary_unit() {
        let u = Relation::nullary_unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.schema().arity(), 0);
        assert!(u.contains_row(&[]));
    }

    #[test]
    fn fingerprint_is_order_independent_and_content_sensitive() {
        let (_c, s) = schema_ab();
        let r1 = Relation::from_rows(s.clone(), vec![row(&[1, 2]), row(&[3, 4])]).unwrap();
        let r2 = Relation::from_rows(s.clone(), vec![row(&[3, 4]), row(&[1, 2])]).unwrap();
        assert_eq!(r1.fingerprint(), r2.fingerprint(), "order-independent");
        assert_eq!(r1.fingerprint(), r1.fingerprint(), "memoized value stable");
        let r3 = Relation::from_rows(s.clone(), vec![row(&[1, 2])]).unwrap();
        assert_ne!(r1.fingerprint(), r3.fingerprint());
        assert_ne!(
            Relation::empty(s).fingerprint(),
            Relation::nullary_unit().fingerprint(),
            "empty vs nullary unit differ by the length term"
        );
    }

    #[test]
    fn display_renders_table() {
        let (c, s) = schema_ab();
        let r = Relation::from_rows(s, vec![row(&[10, 2])]).unwrap();
        let text = r.display(&c).to_string();
        assert!(text.contains("| A  | B |"), "got:\n{text}");
        assert!(text.contains("| 10 | 2 |"), "got:\n{text}");
        assert!(text.ends_with("(1 tuples)"));
    }
}
