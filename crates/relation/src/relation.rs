//! Relations: set-semantics collections of tuples over a [`Schema`].
//!
//! The paper's model is pure set semantics — a relation is a set of tuples —
//! and its cost measure counts tuples. `Relation` therefore maintains the
//! invariant that rows are distinct; every constructor deduplicates.
//!
//! # Storage
//!
//! Physically a relation is **column-major**: one [`Column`] per attribute
//! (dense `i64` for all-integer attributes, dictionary-interned `u32` codes
//! otherwise — see [`crate::column`]). The historical row view
//! ([`Relation::rows`]/[`Relation::iter`]) is *lazily materialized* and
//! memoized: a kernel that builds output columnar never pays for rows, a
//! caller that constructed from rows never pays for columns until a batch
//! kernel asks, and both views describe the same immutable tuple set in the
//! same order. Cloning is cheap — O(arity), not O(tuples): both views are
//! shared (`Arc`-backed payload vectors inside `Column`, an `Arc<[Row]>`
//! row cache), so an executor handing out per-run copies of its base
//! relations bumps reference counts instead of copying tuple data.

use crate::attr::Catalog;
use crate::column::{Column, ColumnBuilder};
use crate::error::{Error, Result};
use crate::fxhash::{mix, FxHashSet};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A tuple: values aligned positionally with the owning relation's schema.
pub type Row = Box<[Value]>;

/// Fold a row's cell hashes into one stable row hash. Computable from either
/// storage layout (columns fold [`Column::hash_into`] with the same `mix`),
/// which is what keeps [`Relation::fingerprint`] representation-independent.
#[inline]
pub(crate) fn stable_row_hash(row: &[Value]) -> u64 {
    row.iter().fold(0u64, |acc, v| mix(acc, v.stable_hash()))
}

/// A set of tuples over a fixed [`Schema`].
///
/// Row order is an implementation detail (it depends on build order and hash
/// layout); equality, hashing-free comparison and display all canonicalize by
/// sorting. Use [`Relation::sorted_rows`] when deterministic order matters.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    /// Tuple count, known up front regardless of which view is materialized
    /// (columns cannot carry it for nullary schemas).
    nrows: usize,
    /// Column-major view; built on demand from `rows` when a constructor
    /// supplied rows. Immutable once set.
    cols: OnceLock<Vec<Column>>,
    /// Row-major view; built on demand from `cols` when a kernel produced
    /// columns. Immutable once set, and shared across clones.
    rows: OnceLock<Arc<[Row]>>,
    /// Lazily computed [`Relation::fingerprint`]; content is immutable after
    /// construction, so a computed value never goes stale.
    fingerprint: OnceLock<u128>,
}

impl Relation {
    fn from_rows_unchecked(schema: Schema, rows: Vec<Row>) -> Self {
        let nrows = rows.len();
        let cell = OnceLock::new();
        cell.set(Arc::from(rows)).expect("fresh OnceLock");
        Relation {
            schema,
            nrows,
            cols: OnceLock::new(),
            rows: cell,
            fingerprint: OnceLock::new(),
        }
    }

    /// The empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation::from_rows_unchecked(schema, Vec::new())
    }

    /// The relation over the empty schema containing the single nullary
    /// tuple. It is the identity of natural join.
    pub fn nullary_unit() -> Self {
        Relation::from_rows_unchecked(Schema::empty(), vec![Box::from([])])
    }

    /// Build from rows, checking arity and removing duplicates (keeping each
    /// row's first occurrence, in order). Above the [`crate::ops::SMALL`]
    /// cutoff the deduplication runs as a parallel partition-then-merge on
    /// the shared pool; the result is byte-identical to the sequential path.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        for row in &rows {
            if row.len() != schema.arity() {
                return Err(Error::ArityMismatch {
                    expected: schema.arity(),
                    got: row.len(),
                });
            }
        }
        let rows = if rows.len() < crate::ops::SMALL {
            dedup_sequential(rows)
        } else {
            dedup_parallel(rows)
        };
        Ok(Relation::from_rows_unchecked(schema, rows))
    }

    /// Build from `Vec<Vec<Value>>` tuples (convenience for tests/examples).
    pub fn from_tuples(schema: Schema, tuples: Vec<Vec<Value>>) -> Result<Self> {
        Self::from_rows(schema, tuples.into_iter().map(Into::into).collect())
    }

    /// Build from rows that are already known to be distinct and of the right
    /// arity (used by operators that dedup as they produce output, and by
    /// harnesses that need an *owned* copy of a relation's tuples without
    /// re-paying deduplication — e.g. the deep-clone baseline interpreter,
    /// now that [`Clone`] shares tuple storage instead of copying it).
    ///
    /// Debug builds verify the invariants; release builds trust the caller.
    pub fn from_distinct_rows(schema: Schema, rows: Vec<Row>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == schema.arity()));
        debug_assert_eq!(
            rows.iter().collect::<FxHashSet<_>>().len(),
            rows.len(),
            "rows must be distinct"
        );
        Relation::from_rows_unchecked(schema, rows)
    }

    /// Build column-major from per-attribute columns whose tuples are
    /// already distinct. `nrows` is explicit because a nullary schema has no
    /// columns to carry it; for arity ≥ 1 every column must have `nrows`
    /// entries. This is how the batch kernels construct output — the row
    /// view stays unmaterialized until something asks for it.
    ///
    /// Debug builds verify arity, lengths, and distinctness.
    pub(crate) fn from_distinct_columns(schema: Schema, nrows: usize, cols: Vec<Column>) -> Self {
        debug_assert_eq!(cols.len(), schema.arity());
        debug_assert!(cols.iter().all(|c| c.len() == nrows));
        let cell = OnceLock::new();
        cell.set(cols).expect("fresh OnceLock");
        let rel = Relation {
            schema,
            nrows,
            cols: cell,
            rows: OnceLock::new(),
            fingerprint: OnceLock::new(),
        };
        #[cfg(debug_assertions)]
        {
            let mut seen: FxHashSet<Row> = FxHashSet::default();
            for i in 0..rel.nrows {
                assert!(seen.insert(rel.row_at(i)), "columnar rows must be distinct");
            }
        }
        rel
    }

    /// The relation's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples — `|R|` in the paper's cost model.
    #[inline]
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// The column-major view: one [`Column`] per schema position. Built on
    /// demand (and memoized) if this relation was constructed from rows.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        self.cols.get_or_init(|| {
            let rows = self.rows.get().expect("one view always materialized");
            let mut builders: Vec<ColumnBuilder> = (0..self.schema.arity())
                .map(|_| ColumnBuilder::with_capacity(rows.len()))
                .collect();
            for row in rows.iter() {
                for (b, v) in builders.iter_mut().zip(row.iter()) {
                    b.push(v.clone());
                }
            }
            builders.into_iter().map(ColumnBuilder::finish).collect()
        })
    }

    /// Whether the columnar view has been materialized (for tests and
    /// accounting; never forces a build).
    pub fn columns_materialized(&self) -> bool {
        self.cols.get().is_some()
    }

    /// Materialize row `i` from whichever view is cheapest. Only the debug
    /// distinctness check in [`Relation::from_distinct_columns`] needs this;
    /// everything else works batch-wise.
    #[cfg(debug_assertions)]
    pub(crate) fn row_at(&self, i: usize) -> Row {
        if let Some(rows) = self.rows.get() {
            return rows[i].clone();
        }
        let cols = self.cols.get().expect("one view always materialized");
        cols.iter().map(|c| c.value(i)).collect()
    }

    /// The rows, in unspecified order. Materialized on demand (and memoized)
    /// if this relation was built column-major.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        self.rows.get_or_init(|| {
            let cols = self.cols.get().expect("one view always materialized");
            (0..self.nrows)
                .map(|i| cols.iter().map(|c| c.value(i)).collect())
                .collect()
        })
    }

    /// Consume the relation, yielding owned rows (still distinct). The row
    /// cache is `Arc`-shared across clones, so this copies the rows out.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows().to_vec()
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows().iter()
    }

    /// Membership test (linear scan; intended for tests and small relations).
    /// Checks against whichever view is resident — never materializes the
    /// other.
    pub fn contains_row(&self, row: &[Value]) -> bool {
        if let Some(rows) = self.rows.get() {
            return rows.iter().any(|r| r.as_ref() == row);
        }
        if row.len() != self.schema.arity() {
            return false;
        }
        let cols = self.cols.get().expect("one view always materialized");
        (0..self.nrows).any(|i| {
            cols.iter()
                .zip(row.iter())
                .all(|(c, v)| c.cell_eq_value(i, v))
        })
    }

    /// The rows sorted into canonical order (for deterministic output).
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut rows = self.rows().to_vec();
        rows.sort_unstable();
        rows
    }

    /// Resident heap bytes of the columnar payloads: per-column code/value
    /// vectors plus each distinct dictionary pool counted once (columns of
    /// one relation frequently share a pool after joins/projections).
    /// Forces the columnar view — callers (the index-cache byte budget) are
    /// on the columnar path already.
    pub fn resident_col_bytes(&self) -> usize {
        let cols = self.columns();
        let mut total = 0usize;
        let mut seen: Vec<*const ()> = Vec::new();
        for c in cols {
            total += c.payload_bytes();
            if let Some(d) = c.dict() {
                let p = std::sync::Arc::as_ptr(d).cast::<()>();
                if !seen.contains(&p) {
                    seen.push(p);
                    total += d.heap_bytes();
                }
            }
        }
        total
    }

    /// Render as an aligned table using `catalog` for the header.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> RelationDisplay<'a> {
        RelationDisplay { rel: self, catalog }
    }

    /// A cheap structural fingerprint of the relation's *content*: the tuple
    /// count combined with the xor and wrapping sum of the per-row hashes.
    /// Row-order independent, so two relations holding the same set of
    /// tuples — e.g. an original and its TSV round-trip reload — fingerprint
    /// identically even though they are distinct allocations. Per-row hashes
    /// fold [`Value::stable_hash`]es, so the fingerprint is also
    /// *layout*-independent: computed from columns when resident (a table
    /// lookup per interned cell), from rows otherwise, with bit-identical
    /// results.
    ///
    /// Computed lazily on first call and memoized (content is immutable).
    /// This is a hash, not a proof of equality: collisions are possible,
    /// so callers deciding anything semantic should also compare schemas
    /// and accept the residual hash-collision risk (the join-index cache
    /// does, trading it for cross-`Arc` reuse).
    pub fn fingerprint(&self) -> u128 {
        *self.fingerprint.get_or_init(|| {
            let mut xor: u64 = 0;
            let mut sum: u64 = self.nrows as u64;
            let mut fold = |h: u64| {
                xor ^= h;
                sum = sum.wrapping_add(h);
            };
            match (self.cols.get(), self.rows.get()) {
                (Some(cols), None) => {
                    let mut acc = vec![0u64; self.nrows];
                    for c in cols {
                        c.hash_into(&mut acc, mix);
                    }
                    acc.into_iter().for_each(&mut fold);
                }
                _ => {
                    for row in self.rows() {
                        fold(stable_row_hash(row));
                    }
                }
            }
            (u128::from(xor) << 64) | u128::from(sum)
        })
    }
}

fn dedup_sequential(rows: Vec<Row>) -> Vec<Row> {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    seen.reserve(rows.len());
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

/// Partition-then-merge deduplication on the shared pool. Rows are
/// partitioned by their full-tuple hash, so duplicates always collide in the
/// same partition and per-partition dedup needs no cross-partition merge;
/// the final sort by original index restores first-occurrence order, making
/// the output byte-identical to [`dedup_sequential`].
fn dedup_parallel(rows: Vec<Row>) -> Vec<Row> {
    use crate::fxhash::FxBuildHasher;
    use std::hash::BuildHasher;

    let parts_n = mjoin_pool::current_num_threads().clamp(1, 64);
    if parts_n == 1 {
        return dedup_sequential(rows);
    }
    // One BuildHasher for the whole partition pass, not one per row.
    let hasher = FxBuildHasher::default();
    let mut parts: Vec<Vec<(usize, Row)>> = vec![Vec::new(); parts_n];
    for (i, row) in rows.into_iter().enumerate() {
        parts[(hasher.hash_one(&row) as usize) % parts_n].push((i, row));
    }
    let deduped = mjoin_pool::par_map(parts, |part| {
        let mut seen: FxHashSet<Row> = FxHashSet::default();
        seen.reserve(part.len());
        part.into_iter()
            .filter(|(_, row)| seen.insert(row.clone()))
            .collect::<Vec<_>>()
    });
    let mut all: Vec<(usize, Row)> = deduped.into_iter().flatten().collect();
    all.sort_unstable_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, row)| row).collect()
}

/// Set equality: same schema and the same set of rows, regardless of order.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.nrows == other.nrows
            && self.sorted_rows() == other.sorted_rows()
    }
}

impl Eq for Relation {}

/// Helper returned by [`Relation::display`].
pub struct RelationDisplay<'a> {
    rel: &'a Relation,
    catalog: &'a Catalog,
}

impl fmt::Display for RelationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let header: Vec<String> = self
            .rel
            .schema
            .attrs()
            .iter()
            .map(|&a| self.catalog.name(a).to_string())
            .collect();
        let rows = self.rel.sorted_rows();
        let mut widths: Vec<usize> = header.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| r.iter().map(std::string::ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:w$} |")?;
            }
            writeln!(f)
        };
        line(f, &header)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &rendered {
            line(f, row)?;
        }
        write!(f, "({} tuples)", self.rel.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn schema_ab() -> (Catalog, Schema) {
        let mut c = Catalog::new();
        let s = Schema::from_chars(&mut c, "AB");
        (c, s)
    }

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn from_rows_dedups() {
        let (_c, s) = schema_ab();
        let r = Relation::from_rows(s, vec![row(&[1, 2]), row(&[1, 2]), row(&[3, 4])]).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains_row(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn parallel_dedup_matches_sequential_order() {
        let (_c, s) = schema_ab();
        // Enough duplicated rows to cross the SMALL cutoff.
        let rows: Vec<Row> = (0..10_000).map(|i| row(&[i % 997, i % 31])).collect();
        let seq = dedup_sequential(rows.clone());
        let par = Relation::from_rows(s, rows).unwrap();
        assert_eq!(par.rows(), &seq[..], "first-occurrence order preserved");
    }

    #[test]
    fn arity_checked() {
        let (_c, s) = schema_ab();
        let err = Relation::from_rows(s, vec![row(&[1])]).unwrap_err();
        assert_eq!(
            err,
            Error::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn set_equality_ignores_order() {
        let (_c, s) = schema_ab();
        let r1 = Relation::from_rows(s.clone(), vec![row(&[1, 2]), row(&[3, 4])]).unwrap();
        let r2 = Relation::from_rows(s, vec![row(&[3, 4]), row(&[1, 2])]).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn inequality_on_rows_and_schema() {
        let (_c, s) = schema_ab();
        let r1 = Relation::from_rows(s.clone(), vec![row(&[1, 2])]).unwrap();
        let r2 = Relation::from_rows(s.clone(), vec![row(&[1, 3])]).unwrap();
        assert_ne!(r1, r2);
        let mut c2 = Catalog::new();
        let other_schema = Schema::from_chars(&mut c2, "AC");
        // Same ids can exist in another catalog, so compare within one.
        let _ = other_schema;
        assert_ne!(r1, Relation::empty(s));
    }

    #[test]
    fn nullary_unit() {
        let u = Relation::nullary_unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.schema().arity(), 0);
        assert!(u.contains_row(&[]));
    }

    #[test]
    fn fingerprint_is_order_independent_and_content_sensitive() {
        let (_c, s) = schema_ab();
        let r1 = Relation::from_rows(s.clone(), vec![row(&[1, 2]), row(&[3, 4])]).unwrap();
        let r2 = Relation::from_rows(s.clone(), vec![row(&[3, 4]), row(&[1, 2])]).unwrap();
        assert_eq!(r1.fingerprint(), r2.fingerprint(), "order-independent");
        assert_eq!(r1.fingerprint(), r1.fingerprint(), "memoized value stable");
        let r3 = Relation::from_rows(s.clone(), vec![row(&[1, 2])]).unwrap();
        assert_ne!(r1.fingerprint(), r3.fingerprint());
        assert_ne!(
            Relation::empty(s).fingerprint(),
            Relation::nullary_unit().fingerprint(),
            "empty vs nullary unit differ by the length term"
        );
    }

    #[test]
    fn fingerprint_is_layout_independent() {
        let (_c, s) = schema_ab();
        let rows = vec![
            vec![Value::Int(1), Value::str("x")].into(),
            vec![Value::Int(2), Value::str("y")].into(),
        ];
        let by_rows = Relation::from_rows(s.clone(), rows).unwrap();
        // Same content constructed column-major, fingerprinted before any
        // row view exists.
        let cols = by_rows.columns().to_vec();
        let by_cols = Relation::from_distinct_columns(s, by_rows.len(), cols);
        assert!(by_cols.rows.get().is_none(), "no row view materialized");
        assert_eq!(by_rows.fingerprint(), by_cols.fingerprint());
    }

    #[test]
    fn views_agree_both_directions() {
        let (_c, s) = schema_ab();
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::str("a")].into(),
            vec![Value::Int(2), Value::str("b")].into(),
        ];
        let r = Relation::from_rows(s.clone(), rows.clone()).unwrap();
        // rows → columns
        let cols = r.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1].value(1), Value::str("b"));
        // columns → rows
        let r2 = Relation::from_distinct_columns(s, r.len(), cols.to_vec());
        assert_eq!(r2.rows(), &rows[..]);
        assert!(r2.contains_row(&[Value::Int(1), Value::str("a")]));
        assert!(!r2.contains_row(&[Value::Int(1), Value::str("b")]));
        assert_eq!(r, r2);
    }

    #[test]
    fn resident_col_bytes_counts_shared_pool_once() {
        let mut c = Catalog::new();
        let s = Schema::from_chars(&mut c, "AB");
        let rows: Vec<Row> = (0..4)
            .map(|i| vec![Value::str(format!("s{i}")), Value::str("t")].into())
            .collect();
        let r = Relation::from_rows(s.clone(), rows).unwrap();
        let bytes = r.resident_col_bytes();
        // Two code vectors of 4×u32 plus two distinct pools.
        assert!(bytes >= 2 * 4 * 4, "codes counted: {bytes}");
        // A gathered clone sharing both pools costs the same accounting.
        let cols2: Vec<Column> = r.columns().iter().map(|c| c.gather(&[0, 1])).collect();
        let r2 = Relation::from_distinct_columns(s, 2, cols2);
        assert!(r2.resident_col_bytes() < bytes + 64);
    }

    #[test]
    fn display_renders_table() {
        let (c, s) = schema_ab();
        let r = Relation::from_rows(s, vec![row(&[10, 2])]).unwrap();
        let text = r.display(&c).to_string();
        assert!(text.contains("| A  | B |"), "got:\n{text}");
        assert!(text.contains("| 10 | 2 |"), "got:\n{text}");
        assert!(text.ends_with("(1 tuples)"));
    }
}
