//! Minimal TSV import/export for relations.
//!
//! The first line is a tab-separated attribute-name header; each subsequent
//! non-empty line is a tuple. Values that parse as `i64` become integers,
//! everything else is a string. This keeps example programs and ad-hoc
//! experiments self-contained without pulling in a serialization framework.

use crate::attr::Catalog;
use crate::error::{Error, Result};
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use crate::value::Value;

/// Parse a relation from TSV text, interning attribute names into `catalog`.
///
/// Column order in the file may differ from canonical schema order; values
/// are permuted into place.
pub fn relation_from_tsv(catalog: &mut Catalog, text: &str) -> Result<Relation> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| Error::Parse("TSV input has no header line".to_string()))?;
    let col_names: Vec<&str> = header.split('\t').map(str::trim).collect();
    if col_names.iter().any(|n| n.is_empty()) {
        return Err(Error::Parse(
            "empty attribute name in TSV header".to_string(),
        ));
    }
    let col_ids: Vec<_> = col_names.iter().map(|n| catalog.intern(n)).collect();
    {
        let mut sorted = col_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != col_ids.len() {
            return Err(Error::Parse(
                "duplicate attribute in TSV header".to_string(),
            ));
        }
    }
    let schema = Schema::new(col_ids.clone());
    // Position of each file column in the canonical schema.
    let dest: Vec<usize> = col_ids
        .iter()
        .map(|&id| schema.position(id).expect("interned above"))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != col_ids.len() {
            return Err(Error::Parse(format!(
                "line {}: expected {} values, found {}",
                lineno + 2,
                col_ids.len(),
                cells.len()
            )));
        }
        let mut row: Vec<Value> = vec![Value::Int(0); cells.len()];
        for (i, cell) in cells.iter().enumerate() {
            row[dest[i]] = Value::parse(cell.trim());
        }
        rows.push(row.into());
    }
    Relation::from_rows(schema, rows)
}

/// Render a relation as TSV (canonical column order, sorted rows).
pub fn relation_to_tsv(catalog: &Catalog, rel: &Relation) -> String {
    let mut out = String::new();
    let names: Vec<&str> = rel
        .schema()
        .attrs()
        .iter()
        .map(|&a| catalog.name(a))
        .collect();
    out.push_str(&names.join("\t"));
    out.push('\n');
    for row in rel.sorted_rows() {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        out.push_str(&cells.join("\t"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut c = Catalog::new();
        let text = "A\tB\n1\t2\n3\thello\n";
        let rel = relation_from_tsv(&mut c, text).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.contains_row(&[Value::Int(1), Value::Int(2)]));
        assert!(rel.contains_row(&[Value::Int(3), Value::str("hello")]));
        let rendered = relation_to_tsv(&c, &rel);
        let rel2 = relation_from_tsv(&mut c, &rendered).unwrap();
        assert_eq!(rel, rel2);
    }

    #[test]
    fn permuted_header_columns_land_canonically() {
        let mut c = Catalog::new();
        c.intern("A"); // make A have the smaller id
        c.intern("B");
        let rel = relation_from_tsv(&mut c, "B\tA\n2\t1\n").unwrap();
        // Canonical order is A, B.
        assert!(rel.contains_row(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn errors() {
        let mut c = Catalog::new();
        assert!(relation_from_tsv(&mut c, "").is_err());
        assert!(relation_from_tsv(&mut c, "A\tA\n1\t2\n").is_err());
        assert!(relation_from_tsv(&mut c, "A\tB\n1\n").is_err());
        assert!(relation_from_tsv(&mut c, "A\t\n1\t2\n").is_err());
    }

    #[test]
    fn blank_lines_ignored_and_dedup() {
        let mut c = Catalog::new();
        let rel = relation_from_tsv(&mut c, "A\n\n1\n1\n\n2\n").unwrap();
        assert_eq!(rel.len(), 2);
    }
}
