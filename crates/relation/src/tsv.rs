//! Minimal TSV import/export for relations.
//!
//! The first line is a tab-separated attribute-name header; each subsequent
//! non-empty line is a tuple. Values that parse as `i64` become integers,
//! everything else is a string. This keeps example programs and ad-hoc
//! experiments self-contained without pulling in a serialization framework.
//!
//! String values are escaped on export so that every relation round-trips:
//! `\` `⇥` `␊` `␍` become `\\` `\t` `\n` `\r`, and strings that the plain
//! reader would mangle — ones that re-parse as an integer (`"007"`), are
//! empty, or carry leading/trailing whitespace — get a `\s` marker prefix
//! forcing the verbatim-string path. Cells without a backslash keep the
//! historical trim-and-sniff behavior, so hand-written files are unaffected;
//! cells with one are unescaped exactly, and an unknown escape is a parse
//! error rather than silent corruption.

use crate::attr::Catalog;
use crate::error::{Error, Result};
use crate::relation::{Relation, Row};
use crate::schema::Schema;
use crate::value::Value;

/// Parse a relation from TSV text, interning attribute names into `catalog`.
///
/// Column order in the file may differ from canonical schema order; values
/// are permuted into place. Thin wrapper over [`relation_from_tsv_reader`].
pub fn relation_from_tsv(catalog: &mut Catalog, text: &str) -> Result<Relation> {
    relation_from_tsv_reader(catalog, text.as_bytes())
}

/// Parse a relation by streaming lines from any [`std::io::BufRead`] source
/// (a `File` behind a `BufReader`, a byte slice, a pipe) — one line resident
/// at a time instead of the whole file as a `String`. I/O failures surface
/// as [`Error::Parse`] like any other malformed input.
pub fn relation_from_tsv_reader<R: std::io::BufRead>(
    catalog: &mut Catalog,
    reader: R,
) -> Result<Relation> {
    let read_err = |e: std::io::Error| Error::Parse(format!("TSV read error: {e}"));
    // `BufRead::lines` strips `\r\n` only on `\n`-terminated lines; a final
    // record with no trailing newline keeps its `\r` (network clients send
    // both CRLF endings and unterminated last lines). A raw trailing `\r`
    // can only be a line-ending artifact — carriage returns *inside* string
    // values are escaped as `\r` on export — so strip exactly one here.
    fn chomp_cr(mut line: String) -> String {
        if line.ends_with('\r') {
            line.pop();
        }
        line
    }
    let mut lines = reader.lines();
    let header = loop {
        match lines.next() {
            None => return Err(Error::Parse("TSV input has no header line".to_string())),
            Some(line) => {
                let line = chomp_cr(line.map_err(read_err)?);
                if !line.trim().is_empty() {
                    break line;
                }
            }
        }
    };
    let col_names: Vec<&str> = header.split('\t').map(str::trim).collect();
    if col_names.iter().any(|n| n.is_empty()) {
        return Err(Error::Parse(
            "empty attribute name in TSV header".to_string(),
        ));
    }
    let col_ids: Vec<_> = col_names.iter().map(|n| catalog.intern(n)).collect();
    {
        let mut sorted = col_ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != col_ids.len() {
            return Err(Error::Parse(
                "duplicate attribute in TSV header".to_string(),
            ));
        }
    }
    let schema = Schema::new(col_ids.clone());
    // Position of each file column in the canonical schema.
    let dest: Vec<usize> = col_ids
        .iter()
        .map(|&id| schema.position(id).expect("interned above"))
        .collect();

    let mut rows: Vec<Row> = Vec::new();
    // Index among non-blank data lines, matching the historical in-memory
    // parser's numbering (blank lines are skipped, not counted).
    let mut lineno = 0usize;
    for line in lines {
        let line = chomp_cr(line.map_err(read_err)?);
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != col_ids.len() {
            return Err(Error::Parse(format!(
                "line {}: expected {} values, found {}",
                lineno + 2,
                col_ids.len(),
                cells.len()
            )));
        }
        let mut row: Vec<Value> = vec![Value::Int(0); cells.len()];
        for (i, cell) in cells.iter().enumerate() {
            row[dest[i]] = cell_from_tsv(cell, lineno + 2)?;
        }
        rows.push(row.into());
        lineno += 1;
    }
    Relation::from_rows(schema, rows)
}

/// Decode one TSV cell. A cell without a backslash takes the historical
/// path (trim, then sniff for an integer); a cell with one is an escaped
/// string and decodes verbatim — no trim, no integer sniffing.
fn cell_from_tsv(cell: &str, lineno: usize) -> Result<Value> {
    if !cell.contains('\\') {
        return Ok(Value::parse(cell.trim()));
    }
    let body = cell.strip_prefix("\\s").unwrap_or(cell);
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                let what = other.map_or("at end of cell".to_string(), |c| format!("`\\{c}`"));
                return Err(Error::Parse(format!(
                    "line {lineno}: unknown TSV escape {what}"
                )));
            }
        }
    }
    Ok(Value::str(out))
}

/// Encode one value as a TSV cell, escaping whatever would corrupt the file
/// (tabs and newlines inside strings) or mis-decode on re-import (strings
/// that look like integers, empty strings, surrounding whitespace).
fn cell_to_tsv(v: &Value) -> String {
    let s = match v {
        Value::Int(i) => return i.to_string(),
        Value::Str(s) => s,
    };
    let needs_marker = s.is_empty() || s.trim().len() != s.len() || s.parse::<i64>().is_ok();
    let needs_escape = s.contains(['\\', '\t', '\n', '\r']);
    if !needs_marker && !needs_escape {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len() + 2);
    if needs_marker {
        out.push_str("\\s");
    }
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Write one body row (no header) as one TSV line, cells in the row's own
/// order, returning the bytes written. Counterpart of [`read_rows_tsv`];
/// the Grace-hash spill path streams partition files through this pair, so
/// it uses the same cell escaping as the relation writer and hostile
/// strings round-trip bit-for-bit.
pub(crate) fn write_row_tsv<W: std::io::Write>(out: &mut W, row: &Row) -> std::io::Result<usize> {
    let mut n = 0usize;
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.write_all(b"\t")?;
            n += 1;
        }
        let cell = cell_to_tsv(v);
        out.write_all(cell.as_bytes())?;
        n += cell.len();
    }
    out.write_all(b"\n")?;
    Ok(n + 1)
}

/// Parse header-less TSV body rows of known `arity`, as written by
/// [`write_row_tsv`]. Cells land positionally — spill files store rows in
/// schema-canonical order already, so no catalog or column permutation is
/// involved.
pub(crate) fn read_rows_tsv<R: std::io::BufRead>(reader: R, arity: usize) -> Result<Vec<Row>> {
    let read_err = |e: std::io::Error| Error::Parse(format!("TSV read error: {e}"));
    let mut rows: Vec<Row> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(read_err)?;
        let line = line.strip_suffix('\r').unwrap_or(&line);
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split('\t').collect();
        if cells.len() != arity {
            return Err(Error::Parse(format!(
                "spill row {}: expected {arity} values, found {}",
                lineno + 1,
                cells.len()
            )));
        }
        let row: Result<Vec<Value>> = cells.iter().map(|c| cell_from_tsv(c, lineno + 1)).collect();
        rows.push(row?.into());
    }
    Ok(rows)
}

/// Stream a relation as TSV (canonical column order, sorted rows) into any
/// [`std::io::Write`] sink, one row at a time.
///
/// The rows are emitted straight from the column vectors: the row order is a
/// sorted *id permutation* (compared column-wise, same `Value` ordering as
/// [`Relation::sorted_rows`]), and each dictionary entry is escaped exactly
/// once — every later occurrence writes the cached cell bytes. No row view
/// is materialized and no output `String` proportional to the relation is
/// built, so dumping a large result costs O(dict + ids) transient memory.
pub fn relation_to_tsv_writer<W: std::io::Write>(
    catalog: &Catalog,
    rel: &Relation,
    out: &mut W,
) -> std::io::Result<()> {
    let names: Vec<&str> = rel
        .schema()
        .attrs()
        .iter()
        .map(|&a| catalog.name(a))
        .collect();
    out.write_all(names.join("\t").as_bytes())?;
    out.write_all(b"\n")?;

    let cols = rel.columns();
    let mut ids: Vec<u32> = (0..rel.len() as u32).collect();
    ids.sort_unstable_by(|&a, &b| {
        cols.iter()
            .map(|c| c.cells_cmp(a as usize, c, b as usize))
            .find(|o| *o != std::cmp::Ordering::Equal)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Escape each dictionary entry once, up front; integer cells format
    // into a reused buffer.
    let escaped: Vec<Option<Vec<String>>> = cols
        .iter()
        .map(|c| {
            c.dict().map(|d| {
                (0..d.len() as u32)
                    .map(|i| cell_to_tsv(d.value(i)))
                    .collect()
            })
        })
        .collect();
    let mut intbuf = String::new();
    for &i in &ids {
        for (k, col) in cols.iter().enumerate() {
            if k > 0 {
                out.write_all(b"\t")?;
            }
            match (col, &escaped[k]) {
                (crate::column::Column::Int(v), _) => {
                    intbuf.clear();
                    use std::fmt::Write as _;
                    let _ = write!(intbuf, "{}", v[i as usize]);
                    out.write_all(intbuf.as_bytes())?;
                }
                (crate::column::Column::Dict { codes, .. }, Some(cache)) => {
                    out.write_all(cache[codes[i as usize] as usize].as_bytes())?;
                }
                (crate::column::Column::Dict { .. }, None) => unreachable!("dict column cached"),
            }
        }
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Render a relation as TSV (canonical column order, sorted rows). Thin
/// wrapper over [`relation_to_tsv_writer`] collecting into a `String`.
pub fn relation_to_tsv(catalog: &Catalog, rel: &Relation) -> String {
    let mut out: Vec<u8> = Vec::new();
    relation_to_tsv_writer(catalog, rel, &mut out).expect("Vec sink cannot fail");
    String::from_utf8(out).expect("TSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut c = Catalog::new();
        let text = "A\tB\n1\t2\n3\thello\n";
        let rel = relation_from_tsv(&mut c, text).unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.contains_row(&[Value::Int(1), Value::Int(2)]));
        assert!(rel.contains_row(&[Value::Int(3), Value::str("hello")]));
        let rendered = relation_to_tsv(&c, &rel);
        let rel2 = relation_from_tsv(&mut c, &rendered).unwrap();
        assert_eq!(rel, rel2);
    }

    #[test]
    fn permuted_header_columns_land_canonically() {
        let mut c = Catalog::new();
        c.intern("A"); // make A have the smaller id
        c.intern("B");
        let rel = relation_from_tsv(&mut c, "B\tA\n2\t1\n").unwrap();
        // Canonical order is A, B.
        assert!(rel.contains_row(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn errors() {
        let mut c = Catalog::new();
        assert!(relation_from_tsv(&mut c, "").is_err());
        assert!(relation_from_tsv(&mut c, "A\tA\n1\t2\n").is_err());
        assert!(relation_from_tsv(&mut c, "A\tB\n1\n").is_err());
        assert!(relation_from_tsv(&mut c, "A\t\n1\t2\n").is_err());
    }

    #[test]
    fn blank_lines_ignored_and_dedup() {
        let mut c = Catalog::new();
        let rel = relation_from_tsv(&mut c, "A\n\n1\n1\n\n2\n").unwrap();
        assert_eq!(rel.len(), 2);
    }

    /// Regression: strings containing tabs or newlines used to be written
    /// verbatim, silently corrupting the file's row/column structure.
    #[test]
    fn hostile_strings_roundtrip() {
        let mut c = Catalog::new();
        let schema = Schema::from_chars(&mut c, "AB");
        let hostile = [
            "tab\there",
            "line\nbreak",
            "cr\rhere",
            "back\\slash",
            "\\t not a tab",
            "007",        // would re-parse as Int(7)
            "-0",         // would re-parse as Int(0)
            "",           // empty string ≠ missing value
            "  padded  ", // trim would eat the spaces
            " \t mixed \n ",
        ];
        let rows = hostile
            .iter()
            .enumerate()
            .map(|(i, s)| vec![Value::Int(i as i64), Value::str(*s)].into())
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let text = relation_to_tsv(&c, &rel);
        // The payload never leaks a raw tab/newline into the file body: every
        // data line has exactly one tab (the A/B separator).
        for line in text.lines().skip(1) {
            assert_eq!(line.matches('\t').count(), 1, "corrupt line: {line:?}");
        }
        let back = relation_from_tsv(&mut c, &text).unwrap();
        assert_eq!(back, rel);
    }

    /// The streaming reader is the same parser: identical result on good
    /// input, identical line numbering in errors (blank lines skipped, not
    /// counted), and I/O failures surface as parse errors.
    #[test]
    fn reader_streams_like_the_string_parser() {
        let mut c = Catalog::new();
        let text = "A\tB\n\n1\t2\n\n3\thi\n";
        let from_str = relation_from_tsv(&mut c, text).unwrap();
        let from_reader =
            relation_from_tsv_reader(&mut c, std::io::BufReader::new(text.as_bytes())).unwrap();
        assert_eq!(from_str, from_reader);

        let bad = "A\tB\n\n1\t2\n3\n";
        let e1 = relation_from_tsv(&mut c, bad).unwrap_err().to_string();
        let e2 = relation_from_tsv_reader(&mut c, bad.as_bytes())
            .unwrap_err()
            .to_string();
        assert_eq!(e1, e2);
        assert!(e1.contains("line 3"), "{e1}");

        struct Failing;
        impl std::io::Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk gone"))
            }
        }
        let err = relation_from_tsv_reader(&mut c, std::io::BufReader::new(Failing)).unwrap_err();
        assert!(err.to_string().contains("TSV read error"), "{err}");
    }

    /// The streaming writer emits exactly what the historical String
    /// renderer did: header, then rows in sorted order, one escape per cell.
    #[test]
    fn writer_matches_sorted_row_rendering() {
        let mut c = Catalog::new();
        let schema = Schema::from_chars(&mut c, "AB");
        let rows = (0..50)
            .map(|i| {
                vec![
                    Value::Int(97 - i),
                    if i % 3 == 0 {
                        Value::str(format!("s{}", i % 7))
                    } else {
                        Value::Int(i)
                    },
                ]
                .into()
            })
            .collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let mut expect = String::new();
        expect.push_str("A\tB\n");
        for row in rel.sorted_rows() {
            let cells: Vec<String> = row.iter().map(cell_to_tsv).collect();
            expect.push_str(&cells.join("\t"));
            expect.push('\n');
        }
        let mut sink: Vec<u8> = Vec::new();
        relation_to_tsv_writer(&c, &rel, &mut sink).unwrap();
        assert_eq!(String::from_utf8(sink).unwrap(), expect);
        assert_eq!(relation_to_tsv(&c, &rel), expect);
    }

    /// Network clients send CRLF line endings and files truncated before
    /// the final newline; both must parse identically to the LF-terminated
    /// canonical form — including the nasty combination of an *escaped*
    /// string cell on an unterminated CRLF final record, where the stray
    /// `\r` used to be absorbed verbatim into the decoded value.
    #[test]
    fn crlf_and_missing_final_newline() {
        let mut c = Catalog::new();
        let canonical = relation_from_tsv(&mut c, "A\tB\n1\t2\n3\thello\n").unwrap();
        for variant in [
            "A\tB\r\n1\t2\r\n3\thello\r\n", // CRLF throughout
            "A\tB\n1\t2\n3\thello",         // no final newline
            "A\tB\r\n1\t2\r\n3\thello\r",   // CRLF, final record unterminated
            "A\tB\r\n1\t2\n3\thello",       // mixed endings
        ] {
            let rel = relation_from_tsv(&mut c, variant).unwrap();
            assert_eq!(rel, canonical, "variant {variant:?}");
            let rel = relation_from_tsv_reader(&mut c, variant.as_bytes()).unwrap();
            assert_eq!(rel, canonical, "reader variant {variant:?}");
        }

        // Escaped cell in final position of an unterminated CRLF record:
        // the trailing \r is a line ending, not part of the value.
        let rel = relation_from_tsv(&mut c, "A\r\n\\shello\r").unwrap();
        assert!(rel.contains_row(&[Value::str("hello")]));
        // A carriage return that is *part of* the value survives, because
        // it travels escaped.
        let rel = relation_from_tsv(&mut c, "A\r\n\\shi\\r\r").unwrap();
        assert!(rel.contains_row(&[Value::str("hi\r")]));

        // Header-only file with no newline at all still parses (empty
        // relation), and a CRLF header interns clean attribute names.
        let rel = relation_from_tsv(&mut c, "A\tB").unwrap();
        assert_eq!(rel.len(), 0);
        let rel = relation_from_tsv(&mut c, "Z\tY\r\n1\t2\r\n").unwrap();
        assert!(c.lookup("Z").is_some() && c.lookup("Y").is_some());
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn plain_cells_keep_trim_and_int_sniffing() {
        let mut c = Catalog::new();
        let rel = relation_from_tsv(&mut c, "A\tB\n 1 \t hello \n").unwrap();
        assert!(rel.contains_row(&[Value::Int(1), Value::str("hello")]));
    }

    #[test]
    fn unknown_escape_is_rejected() {
        let mut c = Catalog::new();
        let err = relation_from_tsv(&mut c, "A\nfoo\\qbar\n").unwrap_err();
        assert!(err.to_string().contains("unknown TSV escape"), "{err}");
        // A trailing lone backslash is rejected too.
        assert!(relation_from_tsv(&mut c, "A\nfoo\\\n").is_err());
    }
}
