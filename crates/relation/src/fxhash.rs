//! A small, fast, non-cryptographic hasher in the style of `rustc-hash`.
//!
//! Hash joins and deduplication dominate this library's runtime, and the keys
//! are short (a handful of machine words), which is exactly the regime where
//! SipHash's HashDoS protection costs the most. The workloads here are
//! synthetic and trusted, so we trade that protection away, following the
//! Rust performance guide. Implemented in-tree to stay within the sanctioned
//! dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash family (derived from the golden
/// ratio; the exact value only needs to be odd and well-mixed).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing step, exposed standalone so batch kernels can fold
/// precomputed per-cell hashes ([`crate::Value::stable_hash`]) into key
/// hashes with exactly the word-mixing [`FxHasher`] uses — keeping row-path
/// and columnar-path key hashes bit-identical.
#[inline]
pub fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// The hasher state: a single 64-bit accumulator.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = mix(self.hash, word);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"a"), hash_of(&"b"));
        // Length is part of the stream for slices via the Hash impl.
        assert_ne!(hash_of(&vec![0u8; 7]), hash_of(&vec![0u8; 8]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn unaligned_tail_bytes_hash_distinctly() {
        // 9 bytes exercises the chunk + remainder path.
        let a: [u8; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        let b: [u8; 9] = [1, 2, 3, 4, 5, 6, 7, 8, 10];
        assert_ne!(hash_of(&a.as_slice()), hash_of(&b.as_slice()));
    }
}
