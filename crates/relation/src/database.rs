//! Databases: an assignment of concrete relations to the (indexed) relation
//! schemes of a database scheme.
//!
//! The paper's database scheme is a *multiset* of relation schemes, so we
//! identify scheme occurrences by dense index (`0..n`) rather than by scheme
//! value; two occurrences of the same scheme hold independent relations.

use crate::cost::CostLedger;
use crate::ops::join;
use crate::relation::Relation;
use crate::schema::Schema;

/// A database `D` over an (implicit, indexed) database scheme: relation `i`
/// is the instance assigned to scheme occurrence `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Database {
    relations: Vec<Relation>,
}

impl Database {
    /// A database over zero relation schemes.
    pub fn new() -> Self {
        Database {
            relations: Vec::new(),
        }
    }

    /// Build from the relations in scheme order.
    pub fn from_relations(relations: Vec<Relation>) -> Self {
        Database { relations }
    }

    /// Append a relation, returning its index.
    pub fn push(&mut self, rel: Relation) -> usize {
        self.relations.push(rel);
        self.relations.len() - 1
    }

    /// The relation assigned to scheme occurrence `idx`.
    pub fn relation(&self, idx: usize) -> &Relation {
        &self.relations[idx]
    }

    /// All relations in scheme order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of relation schemes (`r` in Theorem 2).
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The schemes of the relations, in order.
    pub fn schemas(&self) -> Vec<Schema> {
        self.relations.iter().map(|r| r.schema().clone()).collect()
    }

    /// Total tuples across all input relations (the input part of any cost).
    pub fn total_tuples(&self) -> u64 {
        self.relations.iter().map(|r| r.len() as u64).sum()
    }

    /// The restriction `D[𝒟']` to the scheme occurrences in `indices`.
    pub fn restrict(&self, indices: &[usize]) -> Database {
        Database {
            relations: indices.iter().map(|&i| self.relations[i].clone()).collect(),
        }
    }

    /// `⋈ D` — the natural join of every relation, evaluated naively as a
    /// left-deep fold in index order. This is the *specification* the fancier
    /// evaluators are tested against, not a strategy anyone should cost.
    ///
    /// An empty database joins to the nullary unit relation (the join
    /// identity).
    pub fn join_all(&self) -> Relation {
        let mut acc = Relation::nullary_unit();
        for rel in &self.relations {
            acc = join(&acc, rel);
        }
        acc
    }

    /// `⋈ D[indices]` — the natural join of the selected occurrences.
    pub fn join_of(&self, indices: &[usize]) -> Relation {
        let mut acc = Relation::nullary_unit();
        for &i in indices {
            acc = join(&acc, &self.relations[i]);
        }
        acc
    }

    /// Charge every input relation to `ledger`, labelled by index.
    ///
    /// Both join-expression evaluation and program execution start their cost
    /// accounts this way (§2.3 counts each input relation's tuples).
    pub fn charge_inputs(&self, ledger: &mut CostLedger) {
        for (i, rel) in self.relations.iter().enumerate() {
            ledger.charge_input(format!("input R{i}"), rel.len());
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::value::Value;

    fn rel(c: &mut Catalog, scheme: &str, tuples: &[&[i64]]) -> Relation {
        crate::relation_of_ints(c, scheme, tuples).unwrap()
    }

    fn triangle() -> (Catalog, Database) {
        // R(AB), S(BC), T(CA): a cyclic (triangle) scheme.
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &[&[1, 2], &[4, 5]]);
        let s = rel(&mut c, "BC", &[&[2, 3], &[5, 6]]);
        let t = rel(&mut c, "CA", &[&[3, 1]]);
        (c, Database::from_relations(vec![r, s, t]))
    }

    #[test]
    fn join_all_triangle() {
        let (c, d) = triangle();
        let j = d.join_all();
        assert_eq!(j.schema().display(&c).to_string(), "ABC");
        assert_eq!(j.len(), 1);
        assert!(j.contains_row(&[Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn join_of_subset() {
        let (_c, d) = triangle();
        let j = d.join_of(&[0, 1]);
        assert_eq!(j.len(), 2);
        // Restriction + join_all agrees with join_of.
        assert_eq!(d.restrict(&[0, 1]).join_all(), j);
    }

    #[test]
    fn empty_database_joins_to_unit() {
        let d = Database::new();
        let j = d.join_all();
        assert_eq!(j.len(), 1);
        assert_eq!(j.schema().arity(), 0);
    }

    #[test]
    fn totals_and_charges() {
        let (_c, d) = triangle();
        assert_eq!(d.total_tuples(), 5);
        let mut ledger = CostLedger::new();
        d.charge_inputs(&mut ledger);
        assert_eq!(ledger.total(), 5);
        assert_eq!(ledger.input_total(), 5);
        assert_eq!(ledger.entries().len(), 3);
    }

    #[test]
    fn push_and_access() {
        let (mut c, _) = triangle();
        let mut d = Database::new();
        let idx = d.push(rel(&mut c, "XY", &[&[1, 1]]));
        assert_eq!(idx, 0);
        assert_eq!(d.len(), 1);
        assert_eq!(d.relation(0).len(), 1);
        assert!(!d.is_empty());
    }
}
