//! Scalar values stored in relation tuples.
//!
//! The paper's cost model counts tuples, not bytes, so the value domain only
//! needs to be hashable and comparable. We support 64-bit integers (the
//! workhorse for synthetic workloads) and interned strings (for realistic
//! example data). Strings are reference-counted so that cloning a tuple is
//! cheap and hash joins do not copy string payloads.

use std::fmt;
use std::sync::Arc;

/// A single attribute value inside a tuple.
///
/// `Value` is totally ordered: all integers sort before all strings. This is
/// an arbitrary but fixed convention so relations can be printed and compared
/// deterministically.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// An interned, immutable string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// A deterministic 64-bit content hash, independent of where the value
    /// is stored. This is the *one* per-cell hash the engine uses: the
    /// row-layout kernels fold it per position, the columnar kernels
    /// precompute it per dictionary entry, and [`crate::relation::Relation`]
    /// fingerprints fold it across whole tuples — so hashes computed from
    /// either storage layout agree bit-for-bit and the two layouts'
    /// hash tables interoperate.
    #[inline]
    pub fn stable_hash(&self) -> u64 {
        use crate::fxhash::FxHasher;
        use std::hash::Hasher;
        match self {
            Value::Int(v) => {
                let mut h = FxHasher::default();
                h.write_u64(*v as u64);
                h.finish()
            }
            Value::Str(s) => {
                let mut h = FxHasher::default();
                h.write(s.as_bytes());
                // Distinguish `Str("5")` from `Int(5)`-adjacent byte streams
                // and `""` from the hasher's initial state.
                h.write_u8(0xff);
                h.finish()
            }
        }
    }

    /// Construct an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Return the integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Return the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Parse a value from its text form: an integer if the text parses as
    /// `i64`, otherwise a string. This is the convention used by the TSV
    /// loader.
    pub fn parse(text: &str) -> Self {
        match text.parse::<i64>() {
            Ok(v) => Value::Int(v),
            Err(_) => Value::str(text),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
        assert_eq!(v.to_string(), "42");
    }

    #[test]
    fn str_roundtrip() {
        let v = Value::str("hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_int(), None);
        assert_eq!(v.to_string(), "hello");
    }

    #[test]
    fn parse_prefers_int() {
        assert_eq!(Value::parse("17"), Value::Int(17));
        assert_eq!(Value::parse("-3"), Value::Int(-3));
        assert_eq!(Value::parse("x17"), Value::str("x17"));
        // Overflowing integers fall back to strings.
        assert_eq!(
            Value::parse("99999999999999999999"),
            Value::str("99999999999999999999")
        );
    }

    #[test]
    fn ordering_ints_before_strings() {
        let mut vs = vec![Value::str("a"), Value::int(5), Value::int(-1)];
        vs.sort();
        assert_eq!(vs, vec![Value::int(-1), Value::int(5), Value::str("a")]);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from("s".to_string()), Value::str("s"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let v = Value::str("shared");
        let w = v.clone();
        assert_eq!(v, w);
        if let (Value::Str(a), Value::Str(b)) = (&v, &w) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected strings");
        }
    }
}
