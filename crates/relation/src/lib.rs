//! `mjoin-relation` — the relational-algebra substrate for the `mjoin`
//! workspace, a reproduction of Morishita, *"Avoiding Cartesian Products in
//! Programs for Multiple Joins"* (PODS 1992).
//!
//! This crate provides everything the paper assumes of a relational engine:
//!
//! * [`Value`]s, interned attributes ([`Catalog`], [`AttrId`]), attribute
//!   bitsets ([`AttrSet`]) and canonical [`Schema`]s;
//! * set-semantics [`Relation`]s and [`Database`]s (assignments of relations
//!   to the occurrences of a database scheme);
//! * hash-based operators: natural [`join`](ops::join),
//!   [`semijoin`](ops::semijoin), [`project`](ops::project), selection and
//!   the set operations;
//! * the paper's tuple-count cost model as a [`CostLedger`];
//! * a tiny TSV loader for examples.
//!
//! Higher layers (join-expression trees, programs, the paper's Algorithms 1
//! and 2, optimizers, workloads) build on these types.

#![warn(missing_docs)]

pub mod attr;
pub mod attrset;
pub mod column;
pub mod cost;
pub mod database;
pub mod error;
pub mod fxhash;
pub mod json;
pub mod ops;
pub mod relation;
pub mod schema;
pub mod tsv;
pub mod value;

pub use attr::{AttrId, Catalog};
pub use attrset::AttrSet;
pub use column::{Column, ColumnBuilder, Dict};
pub use cost::{CostEntry, CostKind, CostLedger};
pub use database::Database;
pub use error::{Error, Result};
pub use relation::{Relation, Row};
pub use schema::Schema;
pub use value::Value;

/// Convenience: build a relation over single-letter attributes from integer
/// tuples, interning into `catalog`. Used pervasively by tests and examples.
///
/// Tuple values are given in the scheme's *written* order (`"CA"` means the
/// first value is `C`, the second `A`) and are permuted into the schema's
/// canonical order, so `relation_of_ints(c, "CA", &[&[3, 1]])` holds the
/// tuple with `C = 3, A = 1` no matter which id ordering the catalog chose.
pub fn relation_of_ints(
    catalog: &mut Catalog,
    scheme: &str,
    tuples: &[&[i64]],
) -> Result<Relation> {
    let written_ids = catalog.intern_chars(scheme);
    let schema = Schema::new(written_ids.clone());
    if written_ids.len() != schema.arity() {
        return Err(Error::Parse(format!(
            "scheme `{scheme}` repeats an attribute"
        )));
    }
    let dest: Vec<usize> = written_ids
        .iter()
        .map(|&id| schema.position(id).expect("interned above"))
        .collect();
    let mut rows: Vec<Row> = Vec::with_capacity(tuples.len());
    for t in tuples {
        if t.len() != dest.len() {
            return Err(Error::ArityMismatch {
                expected: dest.len(),
                got: t.len(),
            });
        }
        let mut row = vec![Value::Int(0); t.len()];
        for (i, &v) in t.iter().enumerate() {
            row[dest[i]] = Value::Int(v);
        }
        rows.push(row.into());
    }
    Relation::from_rows(schema, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_of_ints_helper() {
        let mut c = Catalog::new();
        let r = relation_of_ints(&mut c, "AB", &[&[1, 2], &[3, 4]]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().display(&c).to_string(), "AB");
    }

    #[test]
    fn relation_of_ints_permutes_written_order() {
        let mut c = Catalog::new();
        c.intern_chars("ABC");
        // Written order CA; canonical order AC.
        let r = relation_of_ints(&mut c, "CA", &[&[3, 1]]).unwrap();
        assert!(r.contains_row(&[Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn relation_of_ints_rejects_bad_input() {
        let mut c = Catalog::new();
        assert!(relation_of_ints(&mut c, "AA", &[&[1, 2]]).is_err());
        assert!(relation_of_ints(&mut c, "AB", &[&[1]]).is_err());
    }
}
