//! Lints over the raw conjunctive-query / Datalog AST — structural findings
//! available *before* Algorithm 1/2 compiles anything.
//!
//! The statement-level analyzer (`mjoin-analyze`) inspects §2.2 programs;
//! these lints inspect the query that produces them, because a defect in the
//! query inflates everything downstream (hypergraph, AGM bound, Theorem-2
//! certificate, executor choice). Findings reuse the analyzer's
//! [`Diagnostic`]/[`Report`] machinery so `--deny` gates and renderers work
//! unchanged; `stmt` carries the *atom index* for single-query lints and the
//! *rule index* when linting a Datalog rule set.
//!
//! | lint | severity | finding |
//! |------|----------|---------|
//! | `unsafe-head` | error | head variable absent from the body |
//! | `duplicate-atom` | warn | body atom repeated verbatim |
//! | `redundant-atom` | warn | atom folded away by the core (with proof) |
//! | `cartesian-component` | warn | disconnected join graph — the result is a Cartesian product |
//! | `dominated-atom` | note | atom's variables are a strict subset of another atom's |

use crate::ast::{Atom, ConjunctiveQuery};
use crate::minimize::minimize;
use mjoin_analyze::{Diagnostic, Report, Severity};
use std::collections::BTreeSet;

/// Lint one conjunctive query. `stmt` in each diagnostic is the offending
/// atom's index in the body (or `None` for whole-query findings).
pub fn lint_query(query: &ConjunctiveQuery) -> Report {
    let mut report = Report::default();
    unsafe_head(query, &mut report);
    let duplicates = duplicate_atoms(query, &mut report);
    if query.is_safe() {
        redundant_atoms(query, &duplicates, &mut report);
    }
    cartesian_components(query, &mut report);
    dominated_atoms(query, &mut report);
    report
}

/// Lint a Datalog rule set: every rule is linted as a conjunctive query and
/// each finding's `stmt` is re-stamped to the *rule* index, with the atom
/// spelled out in the message.
pub fn lint_rules(rules: &[ConjunctiveQuery]) -> Report {
    let mut report = Report::default();
    for (i, rule) in rules.iter().enumerate() {
        for mut d in lint_query(rule).diagnostics {
            if let Some(atom) = d.stmt {
                d.message = format!(
                    "rule {i} (`{}`), atom {atom}: {}",
                    rule.head_name, d.message
                );
            } else {
                d.message = format!("rule {i} (`{}`): {}", rule.head_name, d.message);
            }
            d.stmt = Some(i);
            report.diagnostics.push(d);
        }
    }
    report
}

/// `unsafe-head`: every head variable must occur in some body atom.
fn unsafe_head(query: &ConjunctiveQuery, report: &mut Report) {
    let body: BTreeSet<&str> = query.body_variables().into_iter().collect();
    for v in &query.head_vars {
        if !body.contains(v.as_str()) {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Error,
                lint: "unsafe-head",
                stmt: None,
                message: format!(
                    "head variable `{v}` does not occur in the body; the query is unsafe"
                ),
                excerpt: Some(query.to_string()),
            });
        }
    }
}

/// `duplicate-atom`: a body atom repeated verbatim. Returns the duplicate
/// indices so `redundant-atom` does not re-report them.
fn duplicate_atoms(query: &ConjunctiveQuery, report: &mut Report) -> BTreeSet<usize> {
    let mut duplicates = BTreeSet::new();
    for (i, atom) in query.body.iter().enumerate() {
        if let Some(j) = query.body[..i].iter().position(|a| a == atom) {
            duplicates.insert(i);
            report.diagnostics.push(Diagnostic {
                severity: Severity::Warn,
                lint: "duplicate-atom",
                stmt: Some(i),
                message: format!("atom {i} repeats atom {j} verbatim; drop one"),
                excerpt: Some(atom.to_string()),
            });
        }
    }
    duplicates
}

/// `redundant-atom`: atoms the core computation folds away (each carries a
/// verified two-way homomorphism proof; unverifiable folds report nothing).
fn redundant_atoms(query: &ConjunctiveQuery, duplicates: &BTreeSet<usize>, report: &mut Report) {
    let m = minimize(query);
    if !m.proof.verified {
        return;
    }
    for &i in &m.proof.dropped {
        // A dropped atom that is part of a verbatim-duplicate group is
        // already reported with the simpler explanation — whichever
        // occurrence the fold happened to remove.
        let in_dup_group = duplicates.contains(&i)
            || query
                .body
                .iter()
                .enumerate()
                .any(|(j, a)| j != i && *a == query.body[i]);
        if in_dup_group {
            continue;
        }
        report.diagnostics.push(Diagnostic {
            severity: Severity::Warn,
            lint: "redundant-atom",
            stmt: Some(i),
            message: format!(
                "atom {i} folds into the core (proof-checked both ways); the query is \
                 equivalent to its {}-atom core `{}`",
                m.core.body.len(),
                m.core
            ),
            excerpt: Some(query.body[i].to_string()),
        });
    }
}

/// Connected components of the body's join graph (atoms share a component
/// when they share a variable); all-constant atoms are excluded.
fn join_components(body: &[Atom]) -> Vec<Vec<usize>> {
    let with_vars: Vec<usize> = (0..body.len())
        .filter(|&i| !body[i].variables().is_empty())
        .collect();
    let mut component: Vec<Option<usize>> = vec![None; body.len()];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for &start in &with_vars {
        if component[start].is_some() {
            continue;
        }
        let id = components.len();
        let mut stack = vec![start];
        let mut members = Vec::new();
        component[start] = Some(id);
        while let Some(i) = stack.pop() {
            members.push(i);
            let vars: BTreeSet<&str> = body[i].variables().into_iter().collect();
            for &j in &with_vars {
                if component[j].is_none() && body[j].variables().iter().any(|v| vars.contains(v)) {
                    component[j] = Some(id);
                    stack.push(j);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }
    components
}

/// `cartesian-component`: a disconnected join graph forces a Cartesian
/// product across components — caught here, before compilation.
fn cartesian_components(query: &ConjunctiveQuery, report: &mut Report) {
    let components = join_components(&query.body);
    if components.len() < 2 {
        return;
    }
    let shape = components
        .iter()
        .map(|c| {
            format!(
                "{{{}}}",
                c.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect::<Vec<_>>()
        .join(" × ");
    report.diagnostics.push(Diagnostic {
        severity: Severity::Warn,
        lint: "cartesian-component",
        stmt: None,
        message: format!(
            "body atoms form {} disconnected join components ({shape}); the result is a \
             Cartesian product across them",
            components.len()
        ),
        excerpt: Some(query.to_string()),
    });
}

/// `dominated-atom`: an atom whose variable set is a *strict* subset of
/// another atom's. Its hyperedge is subsumed in the join hypergraph — not
/// wrong (the data still filters), but worth knowing when reading bounds.
fn dominated_atoms(query: &ConjunctiveQuery, report: &mut Report) {
    let var_sets: Vec<BTreeSet<&str>> = query
        .body
        .iter()
        .map(|a| a.variables().into_iter().collect())
        .collect();
    for (i, vi) in var_sets.iter().enumerate() {
        if vi.is_empty() {
            continue;
        }
        if let Some(j) = var_sets
            .iter()
            .enumerate()
            .position(|(j, vj)| j != i && vi.is_subset(vj) && vi.len() < vj.len())
        {
            report.diagnostics.push(Diagnostic {
                severity: Severity::Note,
                lint: "dominated-atom",
                stmt: Some(i),
                message: format!(
                    "atom {i}'s variables are a strict subset of atom {j}'s; its hyperedge is \
                     scheme-subsumed in the join hypergraph"
                ),
                excerpt: Some(format!("{} ⊑ {}", query.body[i], query.body[j])),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ConjunctiveQuery;
    use crate::parse::parse_query;

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    #[test]
    fn clean_query_is_clean() {
        let report = lint_query(&q("Q(x, z) :- e(x, y), e(y, z)."));
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }

    #[test]
    fn unsafe_head_is_an_error() {
        // The parser rejects unsafe queries, so build the AST directly.
        let query = ConjunctiveQuery {
            head_name: "Q".into(),
            head_vars: vec!["x".into(), "ghost".into()],
            body: q("Q(x) :- e(x, y).").body,
        };
        let report = lint_query(&query);
        assert_eq!(report.by_lint("unsafe-head").len(), 1);
        assert_eq!(report.worst(), Some(Severity::Error));
    }

    #[test]
    fn duplicate_atom_reported_once_not_twice() {
        let report = lint_query(&q("Q(x, y) :- e(x, y), e(x, y)."));
        assert_eq!(report.by_lint("duplicate-atom").len(), 1);
        // The duplicate is also what the core drops; no double report.
        assert!(report.by_lint("redundant-atom").is_empty());
    }

    #[test]
    fn redundant_atom_carries_core_size() {
        let report = lint_query(&q("Q(x, z) :- r(x, y), s(y, z), r(x, w)."));
        let redundant = report.by_lint("redundant-atom");
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].stmt, Some(2));
        assert!(redundant[0].message.contains("2-atom core"));
        assert_eq!(report.worst(), Some(Severity::Warn));
    }

    #[test]
    fn cartesian_component_detected() {
        let report = lint_query(&q("Q(x, a) :- e(x, y), f(a, b)."));
        assert_eq!(report.by_lint("cartesian-component").len(), 1);
        // Connected queries stay silent.
        let ok = lint_query(&q("Q(x, a) :- e(x, y), f(y, a)."));
        assert!(ok.by_lint("cartesian-component").is_empty());
    }

    #[test]
    fn dominated_atom_is_a_note() {
        let report = lint_query(&q("Q(x, y, z) :- t(x, y, z), e(x, y)."));
        let dominated = report.by_lint("dominated-atom");
        assert_eq!(dominated.len(), 1);
        assert_eq!(dominated[0].stmt, Some(1));
        assert_eq!(dominated[0].severity, Severity::Note);
        // A note alone keeps the report clean for `--deny warn`.
        assert!(report.is_clean());
    }

    #[test]
    fn all_constant_atoms_do_not_fake_products() {
        let report = lint_query(&q("Q(x) :- e(x, 2), l(2, 100)."));
        assert!(report.by_lint("cartesian-component").is_empty());
    }

    #[test]
    fn rule_sets_restamp_stmt_to_rule_index() {
        let rules = vec![
            q("T(x, y) :- e(x, y)."),
            q("U(x, z) :- r(x, y), s(y, z), r(x, w)."),
        ];
        let report = lint_rules(&rules);
        let redundant = report.by_lint("redundant-atom");
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].stmt, Some(1));
        assert!(redundant[0].message.contains("rule 1"));
        assert!(redundant[0].message.contains("atom 2"));
    }

    #[test]
    fn constant_terms_do_not_upset_domination() {
        let query = q("Q(x) :- r(x, 3), s(x, y).");
        let report = lint_query(&query);
        // r(x, 3) has var set {x} ⊂ {x, y}: dominated note expected.
        assert_eq!(report.by_lint("dominated-atom").len(), 1);
    }
}
