//! `mjoin-cq` — conjunctive (Datalog-style) queries over named relations,
//! compiled through the paper's join/semijoin/projection pipeline.
//!
//! The paper opens with "computing the natural join of a set of relations
//! plays an important role in relational and deductive database systems";
//! this crate is that deductive-database face: parse
//! `Q(x, z) :- R(x, y), S(y, z), T(y, 3)`, bind atoms against a
//! [`NamedDatabase`], pick a join tree per connected component, run
//! Algorithms 1–2, execute, and project onto the head.

#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod datalog;
pub mod hom;
pub mod minimize;
pub mod parse;
pub mod query_lints;
pub mod storage;

pub use ast::{Atom, ConjunctiveQuery, Term};
pub use compile::{
    execute_query, execute_query_naive, execute_query_with, query_agm_bound, ComponentDecision,
    ExecOptions, MinimizeSummary, PlanStrategy, QueryResult,
};
pub use datalog::{evaluate_datalog, parse_rules, DatalogResult};
pub use hom::{contains, equivalent, homomorphism, Hom};
pub use minimize::{differential_validate, minimize, MinimizeProof, Minimized};
pub use mjoin_wcoj::ExecutorKind;
pub use parse::parse_query;
pub use query_lints::{lint_query, lint_rules};
pub use storage::{NamedDatabase, StoredRelation};
