//! Named relation storage for the query front end.
//!
//! A [`NamedDatabase`] maps predicate names to stored relations and — unlike
//! the bare [`Relation`], whose columns live in canonical attribute order —
//! remembers each relation's *declared* column order, which is what atom
//! terms bind to positionally.

use mjoin_relation::fxhash::FxHashMap;
use mjoin_relation::{tsv, AttrId, Catalog, Error, Relation, Result, Row, Schema, Value};

/// One stored relation with its declared column order.
#[derive(Debug, Clone)]
pub struct StoredRelation {
    /// The predicate name.
    pub name: String,
    /// Column attributes in declared (not canonical) order.
    pub columns: Vec<AttrId>,
    /// The data.
    pub relation: Relation,
}

impl StoredRelation {
    /// Position of declared column `i` within the canonical schema.
    pub fn canonical_position(&self, i: usize) -> usize {
        self.relation
            .schema()
            .position(self.columns[i])
            .expect("declared columns are the schema")
    }
}

/// A named collection of stored relations sharing one attribute catalog.
#[derive(Debug, Clone, Default)]
pub struct NamedDatabase {
    catalog: Catalog,
    relations: Vec<StoredRelation>,
    index: FxHashMap<String, usize>,
}

impl NamedDatabase {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared attribute catalog (column names are interned here,
    /// qualified by relation name to keep same-named columns of different
    /// relations distinct).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Add a relation with named columns and integer tuples (values in
    /// declared column order).
    pub fn add_relation(
        &mut self,
        name: &str,
        column_names: &[&str],
        tuples: &[&[i64]],
    ) -> Result<()> {
        let rows: Vec<Vec<Value>> = tuples
            .iter()
            .map(|t| t.iter().map(|&v| Value::Int(v)).collect())
            .collect();
        self.add_relation_values(name, column_names, rows)
    }

    /// Insert-or-replace a relation's contents, keeping (or creating) its
    /// declared column order. Used by the Datalog fixpoint to refresh
    /// derived predicates between iterations.
    pub fn set_relation_values(
        &mut self,
        name: &str,
        column_names: &[&str],
        tuples: Vec<Vec<Value>>,
    ) -> Result<()> {
        if let Some(&i) = self.index.get(name) {
            let existing = &self.relations[i];
            if existing.columns.len() != column_names.len() {
                return Err(Error::ArityMismatch {
                    expected: existing.columns.len(),
                    got: column_names.len(),
                });
            }
            let columns = existing.columns.clone();
            let schema = Schema::new(columns.clone());
            let dest: Vec<usize> = columns
                .iter()
                .map(|&a| schema.position(a).expect("interned"))
                .collect();
            let mut rows: Vec<Row> = Vec::with_capacity(tuples.len());
            for t in tuples {
                if t.len() != columns.len() {
                    return Err(Error::ArityMismatch {
                        expected: columns.len(),
                        got: t.len(),
                    });
                }
                let mut row = vec![Value::Int(0); t.len()];
                for (j, v) in t.into_iter().enumerate() {
                    row[dest[j]] = v;
                }
                rows.push(row.into());
            }
            self.relations[i].relation = Relation::from_rows(schema, rows)?;
            Ok(())
        } else {
            self.add_relation_values(name, column_names, tuples)
        }
    }

    /// Add a relation with named columns and arbitrary values (in declared
    /// column order).
    pub fn add_relation_values(
        &mut self,
        name: &str,
        column_names: &[&str],
        tuples: Vec<Vec<Value>>,
    ) -> Result<()> {
        if self.index.contains_key(name) {
            return Err(Error::Parse(format!("relation `{name}` already exists")));
        }
        // Qualify column names so `R.a` and `S.a` are unrelated attributes;
        // joins come from query variables, not column-name coincidence.
        let columns: Vec<AttrId> = column_names
            .iter()
            .map(|c| self.catalog.intern(&format!("{name}.{c}")))
            .collect();
        {
            let mut sorted = columns.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != columns.len() {
                return Err(Error::Parse(format!(
                    "relation `{name}` repeats a column name"
                )));
            }
        }
        let schema = Schema::new(columns.clone());
        // Permute declared-order tuples into canonical positions.
        let dest: Vec<usize> = columns
            .iter()
            .map(|&a| schema.position(a).expect("interned"))
            .collect();
        let mut rows: Vec<Row> = Vec::with_capacity(tuples.len());
        for t in tuples {
            if t.len() != columns.len() {
                return Err(Error::ArityMismatch {
                    expected: columns.len(),
                    got: t.len(),
                });
            }
            let mut row = vec![Value::Int(0); t.len()];
            for (i, v) in t.into_iter().enumerate() {
                row[dest[i]] = v;
            }
            rows.push(row.into());
        }
        let relation = Relation::from_rows(schema, rows)?;
        self.index.insert(name.to_string(), self.relations.len());
        self.relations.push(StoredRelation {
            name: name.to_string(),
            columns,
            relation,
        });
        Ok(())
    }

    /// Add a relation from TSV text (header = declared column order).
    pub fn add_tsv(&mut self, name: &str, text: &str) -> Result<()> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| Error::Parse("TSV input has no header".to_string()))?;
        let cols: Vec<&str> = header.split('\t').map(str::trim).collect();
        // Reuse the TSV row parser by reparsing with a scratch catalog, then
        // pull rows back out in declared order.
        let mut scratch = Catalog::new();
        let rel = tsv::relation_from_tsv(&mut scratch, text)?;
        let positions: Vec<usize> = cols
            .iter()
            .map(|c| {
                let id = scratch.lookup(c).expect("header interned");
                rel.schema().position(id).expect("in schema")
            })
            .collect();
        let tuples: Vec<Vec<Value>> = rel
            .rows()
            .iter()
            .map(|row| positions.iter().map(|&p| row[p].clone()).collect())
            .collect();
        self.add_relation_values(name, &cols, tuples)
    }

    /// Look up a stored relation by name.
    pub fn get(&self, name: &str) -> Option<&StoredRelation> {
        self.index.get(name).map(|&i| &self.relations[i])
    }

    /// All stored relations.
    pub fn relations(&self) -> &[StoredRelation] {
        &self.relations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut db = NamedDatabase::new();
        db.add_relation("edge", &["src", "dst"], &[&[1, 2], &[2, 3]])
            .unwrap();
        let stored = db.get("edge").unwrap();
        assert_eq!(stored.relation.len(), 2);
        assert_eq!(stored.columns.len(), 2);
        assert!(db.get("missing").is_none());
    }

    #[test]
    fn declared_order_preserved() {
        let mut db = NamedDatabase::new();
        // Force canonical order ≠ declared order by declaring (b, a) after
        // interning is alphabetical-by-insertion anyway; check positions map.
        db.add_relation("r", &["b", "a"], &[&[10, 20]]).unwrap();
        let stored = db.get("r").unwrap();
        let p0 = stored.canonical_position(0); // column `b`
        let p1 = stored.canonical_position(1); // column `a`
        let row = &stored.relation.rows()[0];
        assert_eq!(row[p0], Value::Int(10));
        assert_eq!(row[p1], Value::Int(20));
    }

    #[test]
    fn same_column_name_in_two_relations_is_distinct() {
        let mut db = NamedDatabase::new();
        db.add_relation("r", &["a"], &[&[1]]).unwrap();
        db.add_relation("s", &["a"], &[&[2]]).unwrap();
        let ra = db.get("r").unwrap().columns[0];
        let sa = db.get("s").unwrap().columns[0];
        assert_ne!(ra, sa);
    }

    #[test]
    fn duplicate_names_and_bad_arity_rejected() {
        let mut db = NamedDatabase::new();
        db.add_relation("r", &["a"], &[&[1]]).unwrap();
        assert!(db.add_relation("r", &["a"], &[&[1]]).is_err());
        assert!(db.add_relation("s", &["a", "a"], &[&[1, 2]]).is_err());
        assert!(db.add_relation("t", &["a", "b"], &[&[1]]).is_err());
    }

    #[test]
    fn tsv_import() {
        let mut db = NamedDatabase::new();
        db.add_tsv("people", "name\tage\nalice\t30\nbob\t40\n")
            .unwrap();
        let stored = db.get("people").unwrap();
        assert_eq!(stored.relation.len(), 2);
        let p_name = stored.canonical_position(0);
        let names: Vec<String> = stored
            .relation
            .sorted_rows()
            .iter()
            .map(|r| r[p_name].to_string())
            .collect();
        assert!(names.contains(&"alice".to_string()));
    }
}
