//! Chandra–Merlin core minimization with proof-carrying rewrites.
//!
//! A conjunctive query is *minimal* (a **core**) when no endomorphism folds
//! it into a strict subset of its own atoms. Minimization repeatedly looks
//! for an atom whose removal still admits a head-preserving homomorphism
//! from the full query into the remainder; each such fold drops the atom and
//! the query stays equivalent. The result matters to everything downstream:
//! the join hypergraph shrinks, so AGM fractional-cover bounds, Theorem-2
//! certificates, and the `auto` executor decision are all computed against
//! the query that will actually run.
//!
//! Every accepted rewrite carries a [`MinimizeProof`]: the *folding*
//! homomorphism (original → core, witnessing `core ⊆ original`) and the
//! *inclusion* homomorphism (core → original — trivial, since the core's
//! atoms are a subset of the original's, witnessing `original ⊆ core`).
//! Both are re-checked with [`hom::check`] before [`minimize`] returns; a
//! proof that fails either direction rejects the rewrite and the original
//! query is returned untouched. On top of the static proof,
//! [`differential_validate`] executes both queries on small generated
//! databases — the dynamic half of "validated by differential execution"
//! that the compile pipeline runs before applying a rewrite.

use crate::ast::{ConjunctiveQuery, Term};
use crate::hom::{self, Hom};
use mjoin_relation::Value;
use std::collections::{BTreeMap, BTreeSet};

/// The two-way equivalence proof attached to a minimization.
#[derive(Debug, Clone)]
pub struct MinimizeProof {
    /// Head-preserving homomorphism original → core (composed over every
    /// accepted fold); witnesses `core ⊆ original`.
    pub folding: Hom,
    /// Head-preserving homomorphism core → original (the identity — the
    /// core's atoms are a subset of the original's); witnesses
    /// `original ⊆ core`.
    pub inclusion: Hom,
    /// Indices (into the original body) of the dropped atoms, ascending.
    pub dropped: Vec<usize>,
    /// Whether both directions re-checked successfully. [`minimize`] only
    /// ever returns a rewritten core under a `verified` proof.
    pub verified: bool,
}

/// A minimized query plus its equivalence proof.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The core (equal to the input when nothing folded).
    pub core: ConjunctiveQuery,
    /// The two-way proof. `proof.dropped` is empty iff the input was
    /// already minimal.
    pub proof: MinimizeProof,
}

/// Compute the core of `query`.
///
/// Greedily folds atoms until none folds; the result is unique up to
/// isomorphism (the core of a CQ is). The rewrite is only accepted when the
/// two-way homomorphism proof re-checks; otherwise the input query comes
/// back unchanged with `proof.verified == false`.
///
/// ```
/// use mjoin_cq::{minimize, parse_query};
///
/// let q = parse_query("Q(x, z) :- r(x, y), s(y, z), r(x, w).").unwrap();
/// let m = minimize(&q);
/// assert_eq!(m.core.body.len(), 2); // r(x, w) folds onto r(x, y)
/// assert_eq!(m.proof.dropped, vec![2]);
/// assert!(m.proof.verified);
/// ```
pub fn minimize(query: &ConjunctiveQuery) -> Minimized {
    let identity = |q: &ConjunctiveQuery| -> Hom {
        q.body_variables()
            .into_iter()
            .map(|v| (v.to_string(), Term::Var(v.to_string())))
            .collect()
    };

    let unchanged = |verified: bool| Minimized {
        core: query.clone(),
        proof: MinimizeProof {
            folding: identity(query),
            inclusion: identity(query),
            dropped: Vec::new(),
            verified,
        },
    };

    if query.body.len() <= 1 || !query.is_safe() {
        return unchanged(query.is_safe());
    }

    let mut keep = vec![true; query.body.len()];
    // Composed folding: original variable → term over the current kept atoms.
    let mut folding = identity(query);
    loop {
        let mut folded = false;
        for i in 0..query.body.len() {
            if !keep[i] {
                continue;
            }
            let current = subquery(query, &keep);
            let mut target_keep: Vec<bool> = keep
                .iter()
                .enumerate()
                .filter(|&(j, _)| keep[j])
                .map(|(j, _)| j != i)
                .collect();
            // `current` is the kept atoms reindexed; mask out atom `i`.
            debug_assert_eq!(target_keep.len(), current.body.len());
            let Some(h) = hom::fold_into(&current, &target_keep) else {
                continue;
            };
            target_keep.clear();
            keep[i] = false;
            for image in folding.values_mut() {
                *image = hom::apply(&h, image);
            }
            folded = true;
        }
        if !folded {
            break;
        }
    }

    let dropped: Vec<usize> = (0..query.body.len()).filter(|&i| !keep[i]).collect();
    if dropped.is_empty() {
        return unchanged(true);
    }

    let core = subquery(query, &keep);
    let inclusion = identity(&core);
    // Proof check, both directions, before the rewrite is accepted.
    if !hom::check(query, &core, &folding) || !hom::check(&core, query, &inclusion) {
        debug_assert!(false, "minimization produced an unverifiable proof");
        return unchanged(false);
    }
    Minimized {
        core,
        proof: MinimizeProof {
            folding,
            inclusion,
            dropped,
            verified: true,
        },
    }
}

/// The query restricted to the atoms with `keep[i]`.
fn subquery(query: &ConjunctiveQuery, keep: &[bool]) -> ConjunctiveQuery {
    ConjunctiveQuery {
        head_name: query.head_name.clone(),
        head_vars: query.head_vars.clone(),
        body: query
            .body
            .iter()
            .zip(keep)
            .filter_map(|(a, &k)| if k { Some(a.clone()) } else { None })
            .collect(),
    }
}

/// A deterministic xorshift generator for database synthesis (no external
/// RNG dependency; reproducibility matters more than quality here).
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Naive backtracking evaluation of `q` over an ad-hoc database: the set of
/// head tuples. Independent of the engine (no binding, no join trees) so it
/// can arbitrate between the original query and its core.
fn eval_naive(
    q: &ConjunctiveQuery,
    db: &BTreeMap<String, Vec<Vec<Value>>>,
) -> BTreeSet<Vec<Value>> {
    fn go(
        q: &ConjunctiveQuery,
        db: &BTreeMap<String, Vec<Vec<Value>>>,
        idx: usize,
        env: &mut BTreeMap<String, Value>,
        out: &mut BTreeSet<Vec<Value>>,
    ) {
        if idx == q.body.len() {
            let tuple: Option<Vec<Value>> =
                q.head_vars.iter().map(|v| env.get(v).cloned()).collect();
            if let Some(t) = tuple {
                out.insert(t);
            }
            return;
        }
        let atom = &q.body[idx];
        let Some(tuples) = db.get(&atom.predicate) else {
            return;
        };
        'tuples: for tuple in tuples {
            if tuple.len() != atom.terms.len() {
                continue;
            }
            let mut added: Vec<String> = Vec::new();
            for (term, v) in atom.terms.iter().zip(tuple) {
                match term {
                    Term::Const(c) => {
                        if c != v {
                            for a in added.drain(..) {
                                env.remove(&a);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(name) => match env.get(name) {
                        Some(bound) => {
                            if bound != v {
                                for a in added.drain(..) {
                                    env.remove(&a);
                                }
                                continue 'tuples;
                            }
                        }
                        None => {
                            env.insert(name.clone(), v.clone());
                            added.push(name.clone());
                        }
                    },
                }
            }
            go(q, db, idx + 1, env, out);
            for a in added {
                env.remove(&a);
            }
        }
    }

    let mut out = BTreeSet::new();
    let mut env = BTreeMap::new();
    go(q, db, 0, &mut env, &mut out);
    out
}

/// Differential validation: execute `original` and `rewritten` on `rounds`
/// small generated databases and compare answer sets exactly.
///
/// The databases draw values from a small integer domain plus every constant
/// mentioned by either query, so constant selections are exercised. Returns
/// a description of the first divergence, if any — equivalent queries (which
/// is what a verified [`MinimizeProof`] guarantees) never diverge.
pub fn differential_validate(
    original: &ConjunctiveQuery,
    rewritten: &ConjunctiveQuery,
    seed: u64,
    rounds: usize,
) -> Result<(), String> {
    // Predicate name → arity, over both bodies.
    let mut arities: BTreeMap<&str, usize> = BTreeMap::new();
    for atom in original.body.iter().chain(&rewritten.body) {
        arities.insert(&atom.predicate, atom.terms.len());
    }
    // Domain: a few small ints plus every constant either query mentions.
    let mut domain: Vec<Value> = (0..4).map(Value::Int).collect();
    for atom in original.body.iter().chain(&rewritten.body) {
        for term in &atom.terms {
            if let Term::Const(c) = term {
                if !domain.contains(c) {
                    domain.push(c.clone());
                }
            }
        }
    }

    let mut rng = XorShift::new(seed ^ 0x6d6a_6f69_6e5f_7131);
    for round in 0..rounds {
        let mut db: BTreeMap<String, Vec<Vec<Value>>> = BTreeMap::new();
        for (&name, &arity) in &arities {
            let tuples = 2 + rng.below(5 + round);
            let mut rel: Vec<Vec<Value>> = Vec::with_capacity(tuples);
            for _ in 0..tuples {
                rel.push(
                    (0..arity)
                        .map(|_| domain[rng.below(domain.len())].clone())
                        .collect(),
                );
            }
            rel.sort();
            rel.dedup();
            db.insert(name.to_string(), rel);
        }
        let a = eval_naive(original, &db);
        let b = eval_naive(rewritten, &db);
        if a != b {
            return Err(format!(
                "differential divergence on round {round}: original produced {} tuple(s), \
                 rewritten produced {} (db: {db:?})",
                a.len(),
                b.len()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    #[test]
    fn already_minimal_queries_untouched() {
        for text in [
            "Q(x, z) :- e(x, y), e(y, z).",
            "Q(x, y, z) :- e(x, y), e(y, z), e(z, x).",
            "Q(x) :- r(x, 3).",
            "Q(x, t) :- e(x, y), l(y, t).",
        ] {
            let query = q(text);
            let m = minimize(&query);
            assert!(m.proof.verified);
            assert!(m.proof.dropped.is_empty(), "{text} should be minimal");
            assert_eq!(m.core, query);
        }
    }

    #[test]
    fn folds_single_redundant_atom_with_proof() {
        let query = q("Q(x, z) :- r(x, y), s(y, z), r(x, w).");
        let m = minimize(&query);
        assert_eq!(m.proof.dropped, vec![2]);
        assert_eq!(m.core.body.len(), 2);
        assert!(m.proof.verified);
        // Re-check the proof from outside.
        assert!(hom::check(&query, &m.core, &m.proof.folding));
        assert!(hom::check(&m.core, &query, &m.proof.inclusion));
    }

    #[test]
    fn folds_chains_of_redundancy() {
        // A dangling 2-path r(x,a), r(a,b) folds onto the spine r(x,y), r(y,z)
        // because only x is exported.
        let query = q("Q(x) :- r(x, y), r(y, z), r(x, a), r(a, b).");
        let m = minimize(&query);
        // Either 2-path survives (cores are unique up to isomorphism).
        assert_eq!(m.core.body.len(), 2);
        assert_eq!(m.proof.dropped.len(), 2);
        assert!(m.proof.verified);
    }

    #[test]
    fn duplicate_atoms_fold() {
        let query = q("Q(x, y) :- e(x, y), e(x, y).");
        let m = minimize(&query);
        assert_eq!(m.core.body.len(), 1);
        assert!(m.proof.verified);
    }

    #[test]
    fn head_variables_block_folding() {
        // Both atoms export their second variable: nothing folds.
        let query = q("Q(x, y, z) :- r(x, y), r(x, z).");
        let m = minimize(&query);
        assert!(m.proof.dropped.is_empty());
    }

    #[test]
    fn triangle_with_redundant_edge_atom() {
        // The classic: a triangle plus a pendant copy of one edge.
        let query = q("Q(x, y, z) :- e(x, y), e(y, z), e(z, x), e(x, w).");
        let m = minimize(&query);
        assert_eq!(m.proof.dropped, vec![3]);
        assert_eq!(m.core.body.len(), 3);
    }

    #[test]
    fn core_of_core_is_fixed_point() {
        let query = q("Q(x) :- r(x, y), r(x, a), r(a, b), r(x, c).");
        let m = minimize(&query);
        let m2 = minimize(&m.core);
        assert!(m2.proof.dropped.is_empty());
        assert_eq!(m2.core, m.core);
    }

    #[test]
    fn differential_validation_accepts_true_rewrites() {
        let query = q("Q(x, z) :- r(x, y), s(y, z), r(x, w).");
        let m = minimize(&query);
        differential_validate(&query, &m.core, 7, 4).unwrap();
    }

    #[test]
    fn differential_validation_rejects_wrong_rewrites() {
        // Dropping a *non*-redundant atom is caught dynamically.
        let query = q("Q(x, z) :- r(x, y), s(y, z).");
        let wrong = q("Q(x, z) :- r(x, y), s(w, z).");
        assert!(differential_validate(&query, &wrong, 7, 6).is_err());
    }

    #[test]
    fn constants_participate_in_folding() {
        // r(x, w) folds onto r(x, 3) by w ↦ 3.
        let query = q("Q(x) :- r(x, 3), r(x, w).");
        let m = minimize(&query);
        assert_eq!(m.core.body.len(), 1);
        assert_eq!(m.proof.dropped, vec![1]);
        let image = hom::apply(&m.proof.folding, &Term::Var("w".into()));
        assert_eq!(image, Term::Const(Value::Int(3)));
    }

    #[test]
    fn unsafe_query_left_alone() {
        let query = ConjunctiveQuery {
            head_name: "Q".into(),
            head_vars: vec!["missing".into()],
            body: q("Q(x) :- r(x, y), r(x, w).").body,
        };
        let m = minimize(&query);
        assert!(!m.proof.verified);
        assert!(m.proof.dropped.is_empty());
    }
}
