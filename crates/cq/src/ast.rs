//! Abstract syntax for conjunctive queries.
//!
//! A conjunctive query is a head and a body of relational atoms:
//!
//! ```text
//! Q(x, z) :- R(x, y), S(y, z), T(y, 3).
//! ```
//!
//! Variables join positionally-named columns of the stored relations; shared
//! variables are natural-join conditions, constants are selections. This is
//! exactly the multi-join workload the paper's opening sentence motivates
//! ("computing the natural join of a set of relations plays an important
//! role in relational and deductive database systems").

use mjoin_relation::Value;
use std::fmt;

/// A term in an atom: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A query variable (joins wherever it repeats).
    Var(String),
    /// A constant (a selection on that column).
    Const(Value),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Int(i)) => write!(f, "{i}"),
            Term::Const(Value::Str(s)) => write!(f, "\"{s}\""),
        }
    }
}

/// A body atom: a stored predicate applied to terms, positionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The stored relation's name.
    pub predicate: String,
    /// Terms, one per column of the stored relation.
    pub terms: Vec<Term>,
}

impl Atom {
    /// The distinct variable names appearing in this atom, in first-use order.
    pub fn variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(&v.as_str()) {
                    out.push(v);
                }
            }
        }
        out
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A conjunctive query `head(vars) :- atom, atom, …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Name of the head predicate (cosmetic).
    pub head_name: String,
    /// Output variables, in output-column order.
    pub head_vars: Vec<String>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// All distinct body variables, in first-use order.
    pub fn body_variables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for atom in &self.body {
            for v in atom.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// A query is *safe* if every head variable occurs in the body.
    pub fn is_safe(&self) -> bool {
        let body = self.body_variables();
        self.head_vars.iter().all(|v| body.contains(&v.as_str()))
    }

    /// Whether the query is a *full* conjunctive query (head keeps every
    /// body variable — a pure multi-join, no final projection).
    pub fn is_full(&self) -> bool {
        let body = self.body_variables();
        body.len() == self.head_vars.len()
            && body.iter().all(|v| self.head_vars.iter().any(|h| h == v))
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_name)?;
        for (i, v) in self.head_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") :- ")?;
        for (i, atom) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{atom}")?;
        }
        write!(f, ".")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> ConjunctiveQuery {
        ConjunctiveQuery {
            head_name: "Q".into(),
            head_vars: vec!["x".into(), "z".into()],
            body: vec![
                Atom {
                    predicate: "R".into(),
                    terms: vec![Term::Var("x".into()), Term::Var("y".into())],
                },
                Atom {
                    predicate: "S".into(),
                    terms: vec![Term::Var("y".into()), Term::Var("z".into())],
                },
                Atom {
                    predicate: "T".into(),
                    terms: vec![Term::Var("y".into()), Term::Const(Value::Int(3))],
                },
            ],
        }
    }

    #[test]
    fn variables_in_order() {
        let q = q();
        assert_eq!(q.body_variables(), vec!["x", "y", "z"]);
        assert_eq!(q.body[0].variables(), vec!["x", "y"]);
    }

    #[test]
    fn safety() {
        let mut q = q();
        assert!(q.is_safe());
        q.head_vars.push("w".into());
        assert!(!q.is_safe());
    }

    #[test]
    fn fullness() {
        let mut q = q();
        assert!(!q.is_full());
        q.head_vars = vec!["x".into(), "y".into(), "z".into()];
        assert!(q.is_full());
    }

    #[test]
    fn display_roundtrips_visually() {
        assert_eq!(q().to_string(), "Q(x, z) :- R(x, y), S(y, z), T(y, 3).");
    }

    #[test]
    fn repeated_variable_listed_once() {
        let a = Atom {
            predicate: "E".into(),
            terms: vec![Term::Var("x".into()), Term::Var("x".into())],
        };
        assert_eq!(a.variables(), vec!["x"]);
    }
}
