//! Homomorphism search between conjunctive queries.
//!
//! A *homomorphism* from query `P` to query `Q` is a mapping `h` from `P`'s
//! variables to `Q`'s terms that (1) sends every body atom of `P` onto a body
//! atom of `Q` with the same predicate, (2) fixes constants, and (3) maps
//! `P`'s head tuple onto `Q`'s head tuple positionally. By the classic
//! Chandra–Merlin theorem, such an `h` exists iff `Q ⊆ P` — every answer of
//! `Q` is an answer of `P` on every database — so the search doubles as a
//! containment check ([`contains`], [`equivalent`]) and as the engine behind
//! core minimization (`minimize.rs` folds a query into a strict subset of its
//! own atoms).
//!
//! The search is a backtracking match of atoms onto atoms with two prunes:
//!
//! * **arity/predicate buckets** — candidate target atoms are indexed by
//!   `(predicate, arity)`, so an atom only ever tries same-shaped targets;
//! * **occurrence-profile (degree) pruning** — a variable `x` may map to a
//!   variable `y` only if every `(predicate, position)` slot where `x`
//!   occurs is also a slot where `y` occurs. This subsumes plain degree
//!   pruning (an image variable must be at least as "connected" as its
//!   preimage) and rejects most dead branches before any atom is matched.
//!
//! The search is exact but budgeted: pathological inputs give up after
//! [`NODE_BUDGET`] backtracking nodes and report "no homomorphism found",
//! which downstream passes treat as "leave the query alone" — sound, merely
//! incomplete.

use crate::ast::{Atom, ConjunctiveQuery, Term};
use std::collections::{BTreeMap, BTreeSet};

/// A homomorphism as a substitution: source variable → target term.
pub type Hom = BTreeMap<String, Term>;

/// Backtracking-node budget; beyond it the search gives up (returns `None`).
pub const NODE_BUDGET: usize = 200_000;

/// Apply a substitution to a term (variables not in the map stay fixed).
pub fn apply(hom: &Hom, term: &Term) -> Term {
    match term {
        Term::Var(v) => hom.get(v).cloned().unwrap_or_else(|| term.clone()),
        Term::Const(_) => term.clone(),
    }
}

/// Apply a substitution to a whole atom.
pub fn apply_atom(hom: &Hom, atom: &Atom) -> Atom {
    Atom {
        predicate: atom.predicate.clone(),
        terms: atom.terms.iter().map(|t| apply(hom, t)).collect(),
    }
}

/// The `(predicate, position)` slots where each variable of `atoms` occurs.
fn occurrence_profiles(atoms: &[&Atom]) -> BTreeMap<String, BTreeSet<(String, usize)>> {
    let mut profiles: BTreeMap<String, BTreeSet<(String, usize)>> = BTreeMap::new();
    for atom in atoms {
        for (pos, term) in atom.terms.iter().enumerate() {
            if let Term::Var(v) = term {
                profiles
                    .entry(v.clone())
                    .or_default()
                    .insert((atom.predicate.clone(), pos));
            }
        }
    }
    profiles
}

struct Search<'a> {
    /// Source atoms in match order (most-constrained-first).
    from_atoms: Vec<&'a Atom>,
    /// Candidate target atoms per source atom (same predicate and arity).
    candidates: Vec<Vec<&'a Atom>>,
    /// Occurrence profile of each source variable.
    from_profiles: BTreeMap<String, BTreeSet<(String, usize)>>,
    /// Occurrence profile of each target variable.
    to_profiles: BTreeMap<String, BTreeSet<(String, usize)>>,
    /// Remaining backtracking nodes before the search gives up.
    budget: usize,
    /// Whether the budget ran out (distinguishes "no hom" from "gave up").
    exhausted: bool,
}

impl<'a> Search<'a> {
    /// Try to extend `map` so source atom `idx` matches some candidate.
    fn solve(&mut self, idx: usize, map: &mut Hom) -> bool {
        if idx == self.from_atoms.len() {
            return true;
        }
        let atom = self.from_atoms[idx];
        for ci in 0..self.candidates[idx].len() {
            if self.budget == 0 {
                self.exhausted = true;
                return false;
            }
            self.budget -= 1;
            let target = self.candidates[idx][ci];
            let mut added: Vec<String> = Vec::new();
            if self.unify(atom, target, map, &mut added) && self.solve(idx + 1, map) {
                return true;
            }
            for v in added {
                map.remove(&v);
            }
        }
        false
    }

    /// Unify `atom` against `target` under `map`, recording new bindings.
    fn unify(&self, atom: &Atom, target: &Atom, map: &mut Hom, added: &mut Vec<String>) -> bool {
        for (s, t) in atom.terms.iter().zip(&target.terms) {
            match s {
                Term::Const(c) => {
                    if !matches!(t, Term::Const(c2) if c2 == c) {
                        return false;
                    }
                }
                Term::Var(v) => match map.get(v) {
                    Some(bound) => {
                        if bound != t {
                            return false;
                        }
                    }
                    None => {
                        if !self.image_ok(v, t) {
                            return false;
                        }
                        map.insert(v.clone(), t.clone());
                        added.push(v.clone());
                    }
                },
            }
        }
        true
    }

    /// Occurrence-profile prune: can source variable `v` map to term `t`?
    fn image_ok(&self, v: &str, t: &Term) -> bool {
        let Term::Var(w) = t else {
            // Constants carry no profile; the atom-by-atom match alone
            // decides whether a variable may collapse onto a constant.
            return true;
        };
        match (self.from_profiles.get(v), self.to_profiles.get(w)) {
            (Some(need), Some(have)) => need.is_subset(have),
            (Some(_), None) => false,
            (None, _) => true,
        }
    }
}

/// Find a homomorphism from `from`'s body into the atoms of `to_atoms`,
/// pre-seeded with the bindings in `seed` (used for head preservation).
///
/// Returns the completed substitution, or `None` when there is none (or the
/// node budget ran out).
fn search(from_atoms: &[&Atom], to_atoms: &[&Atom], seed: Hom) -> Option<Hom> {
    // Bucket targets by (predicate, arity).
    let mut candidates: Vec<Vec<&Atom>> = Vec::with_capacity(from_atoms.len());
    for atom in from_atoms {
        let bucket: Vec<&Atom> = to_atoms
            .iter()
            .filter(|t| t.predicate == atom.predicate && t.terms.len() == atom.terms.len())
            .copied()
            .collect();
        if bucket.is_empty() {
            return None;
        }
        candidates.push(bucket);
    }

    // Most-constrained-first: repeatedly pick the unmatched atom with the
    // most already-bound variables, tie-broken by fewest candidates.
    let mut order: Vec<usize> = Vec::with_capacity(from_atoms.len());
    let mut bound_vars: BTreeSet<String> = seed.keys().cloned().collect();
    let mut remaining: Vec<usize> = (0..from_atoms.len()).collect();
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| {
                let bound = from_atoms[i]
                    .variables()
                    .iter()
                    .filter(|v| bound_vars.contains(**v))
                    .count();
                (bound, usize::MAX - candidates[i].len())
            })
            .expect("non-empty");
        order.push(best);
        for v in from_atoms[best].variables() {
            bound_vars.insert(v.to_string());
        }
        remaining.remove(pos);
    }

    let ordered_atoms: Vec<&Atom> = order.iter().map(|&i| from_atoms[i]).collect();
    let ordered_candidates: Vec<Vec<&Atom>> =
        order.iter().map(|&i| candidates[i].clone()).collect();
    let mut s = Search {
        from_profiles: occurrence_profiles(&ordered_atoms),
        to_profiles: occurrence_profiles(to_atoms),
        from_atoms: ordered_atoms,
        candidates: ordered_candidates,
        budget: NODE_BUDGET,
        exhausted: false,
    };
    let mut map = seed;
    if s.solve(0, &mut map) {
        Some(map)
    } else {
        None
    }
}

/// Seed a head-preserving substitution: `from.head_vars[i] ↦ to.head_vars[i]`.
///
/// Fails (returns `None`) when the heads have different arities or a repeated
/// head variable would need two images.
fn head_seed(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Hom> {
    if from.head_vars.len() != to.head_vars.len() {
        return None;
    }
    let mut seed = Hom::new();
    for (f, t) in from.head_vars.iter().zip(&to.head_vars) {
        let image = Term::Var(t.clone());
        match seed.get(f) {
            Some(prev) if *prev != image => return None,
            _ => {
                seed.insert(f.clone(), image);
            }
        }
    }
    Some(seed)
}

/// Find a head-preserving homomorphism from `from` to `to`, if one exists.
pub fn homomorphism(from: &ConjunctiveQuery, to: &ConjunctiveQuery) -> Option<Hom> {
    let seed = head_seed(from, to)?;
    let from_atoms: Vec<&Atom> = from.body.iter().collect();
    let to_atoms: Vec<&Atom> = to.body.iter().collect();
    search(&from_atoms, &to_atoms, seed)
}

/// Find an endomorphism of `q` whose image avoids every atom `i` with
/// `!keep[i]` — i.e. a folding of `q` into the kept subset of its own body.
pub fn fold_into(q: &ConjunctiveQuery, keep: &[bool]) -> Option<Hom> {
    debug_assert_eq!(keep.len(), q.body.len());
    let mut seed = Hom::new();
    for v in &q.head_vars {
        seed.insert(v.clone(), Term::Var(v.clone()));
    }
    let from_atoms: Vec<&Atom> = q.body.iter().collect();
    let to_atoms: Vec<&Atom> = q
        .body
        .iter()
        .zip(keep)
        .filter_map(|(a, &k)| if k { Some(a) } else { None })
        .collect();
    search(&from_atoms, &to_atoms, seed)
}

/// Verify that `hom` is a head-preserving homomorphism from `from` to `to`.
///
/// This is the proof-checking half of the pair: [`homomorphism`] *finds*
/// mappings, `check` *validates* them independently (minimize.rs refuses a
/// rewrite unless both directions check out).
pub fn check(from: &ConjunctiveQuery, to: &ConjunctiveQuery, hom: &Hom) -> bool {
    if from.head_vars.len() != to.head_vars.len() {
        return false;
    }
    for (f, t) in from.head_vars.iter().zip(&to.head_vars) {
        if apply(hom, &Term::Var(f.clone())) != Term::Var(t.clone()) {
            return false;
        }
    }
    from.body
        .iter()
        .all(|atom| to.body.contains(&apply_atom(hom, atom)))
}

/// Containment check: does `general` contain `specific` (`specific ⊆
/// general`: on every database, every answer of `specific` is an answer of
/// `general`)? True iff a head-preserving homomorphism `general → specific`
/// exists.
pub fn contains(general: &ConjunctiveQuery, specific: &ConjunctiveQuery) -> bool {
    homomorphism(general, specific).is_some()
}

/// Equivalence check: containment in both directions.
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    contains(a, b) && contains(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn q(text: &str) -> ConjunctiveQuery {
        parse_query(text).unwrap()
    }

    #[test]
    fn identity_homomorphism_exists() {
        let a = q("Q(x, z) :- r(x, y), s(y, z).");
        let h = homomorphism(&a, &a).unwrap();
        assert!(check(&a, &a, &h));
    }

    #[test]
    fn redundant_atom_folds() {
        // r(x, w) folds onto r(x, y) via w ↦ y.
        let wide = q("Q(x, z) :- r(x, y), s(y, z), r(x, w).");
        let core = q("Q(x, z) :- r(x, y), s(y, z).");
        let h = homomorphism(&wide, &core).unwrap();
        assert_eq!(h.get("w"), Some(&Term::Var("y".into())));
        assert!(check(&wide, &core, &h));
        // And the trivial inclusion holds the other way.
        assert!(homomorphism(&core, &wide).is_some());
        assert!(equivalent(&wide, &core));
    }

    #[test]
    fn head_variables_are_fixed() {
        // z is in the head, so r(x, z) cannot fold onto r(x, y) — but the
        // same body folds fine once the head stops exporting z.
        let exported = q("Q(x, y, z) :- r(x, y), r(x, z).");
        assert!(fold_into(&exported, &[true, false]).is_none());
        let private = q("Q(x, y) :- r(x, y), r(x, z).");
        assert!(fold_into(&private, &[true, false]).is_some());
    }

    #[test]
    fn containment_is_directional() {
        // path3 ⊆ path2 (a 3-path's endpoints... no: every 3-path answer is
        // NOT a 2-path answer; rather Q2 ⊇ Q3 fails, but folding the 3-path
        // onto the 2-path requires b↦? with head fixed — check directions
        // concretely: hom from 2-path into 3-path maps y to b: exists? head
        // (x,z)↦(x,z) but 2-path's z is head; 3-path head is (x,z) with
        // z at the end. No hom either way for distinct predicates.
        let p2 = q("Q(x, z) :- e(x, y), e(y, z).");
        let tri = q("Q(x, z) :- e(x, y), e(y, z), e(z, x).");
        // hom p2 → tri exists (identity on x,y,z): so tri ⊆ p2.
        assert!(contains(&p2, &tri));
        // No hom tri → p2: e(z, x) has no image with z, x fixed.
        assert!(!contains(&tri, &p2));
    }

    #[test]
    fn constants_must_match() {
        let a = q("Q(x) :- r(x, 3).");
        let b = q("Q(x) :- r(x, 4).");
        assert!(homomorphism(&a, &b).is_none());
        assert!(homomorphism(&a, &a).is_some());
        // A variable may collapse onto a constant.
        let gen = q("Q(x) :- r(x, y).");
        assert!(contains(&gen, &a));
        assert!(!contains(&a, &gen));
    }

    #[test]
    fn repeated_variables_respected() {
        // r(x, x) cannot map onto r(x, y) (x is head-fixed), but r(x, y)
        // maps onto r(x, x) by y ↦ x.
        let diag = q("Q(x) :- r(x, x).");
        let edge = q("Q(x) :- r(x, y).");
        assert!(contains(&edge, &diag));
        assert!(!contains(&diag, &edge));
    }

    #[test]
    fn fold_into_respects_keep_mask() {
        let wide = q("Q(x, z) :- r(x, y), s(y, z), r(x, w).");
        // Fold atom 2 away: allowed.
        let h = fold_into(&wide, &[true, true, false]).unwrap();
        assert_eq!(apply_atom(&h, &wide.body[2]), wide.body[0]);
        // Folding away atom 1 (the only s-atom) is impossible.
        assert!(fold_into(&wide, &[true, false, true]).is_none());
    }

    #[test]
    fn arity_mismatch_means_no_candidates() {
        let a = q("Q(x) :- r(x, y).");
        let b = q("Q(x) :- r(x, y, z).");
        assert!(homomorphism(&a, &b).is_none());
    }

    #[test]
    fn profile_prune_does_not_lose_solutions() {
        // A 4-cycle folds onto... nothing smaller with all-distinct head;
        // but with a boolean head it folds onto a self-loop pattern only if
        // one exists. Check a case where the prune must still find the hom:
        // triangle (boolean) → triangle rotated.
        let t1 = q("Q() :- e(x, y), e(y, z), e(z, x).");
        let t2 = q("Q() :- e(a, b), e(b, c), e(c, a).");
        assert!(equivalent(&t1, &t2));
    }
}
