//! Parser for the textual query form `Q(x, z) :- R(x, y), S(y, z), T(y, 3).`
//!
//! Lexical rules: identifiers are `[A-Za-z_][A-Za-z0-9_]*`; a term is a
//! variable (identifier starting lowercase or `_`), an integer constant, or
//! a double-quoted string constant; predicates conventionally start
//! uppercase but any identifier is accepted. The trailing period is
//! optional.

use crate::ast::{Atom, ConjunctiveQuery, Term};
use mjoin_relation::{Error, Result, Value};

struct Lexer {
    chars: Vec<char>,
    pos: usize,
}

impl Lexer {
    fn new(text: &str) -> Self {
        Lexer {
            chars: text.chars().collect(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, expected: char) -> Result<()> {
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(Error::Parse(format!(
                "expected `{expected}`, found {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn eat_str(&mut self, expected: &str) -> Result<()> {
        self.skip_ws();
        for c in expected.chars() {
            if self.chars.get(self.pos) == Some(&c) {
                self.pos += 1;
            } else {
                return Err(Error::Parse(format!(
                    "expected `{expected}` at offset {}",
                    self.pos
                )));
            }
        }
        Ok(())
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        if self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_alphabetic() || *c == '_')
        {
            self.pos += 1;
            while self
                .chars
                .get(self.pos)
                .is_some_and(|c| c.is_alphanumeric() || *c == '_')
            {
                self.pos += 1;
            }
            Ok(self.chars[start..self.pos].iter().collect())
        } else {
            Err(Error::Parse(format!(
                "expected identifier at offset {}",
                self.pos
            )))
        }
    }

    fn term(&mut self) -> Result<Term> {
        match self.peek() {
            Some('"') => {
                self.pos += 1;
                let start = self.pos;
                while self.chars.get(self.pos).is_some_and(|&c| c != '"') {
                    self.pos += 1;
                }
                if self.pos >= self.chars.len() {
                    return Err(Error::Parse("unterminated string constant".into()));
                }
                let s: String = self.chars[start..self.pos].iter().collect();
                self.pos += 1;
                Ok(Term::Const(Value::str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                self.pos += 1;
                while self.chars.get(self.pos).is_some_and(char::is_ascii_digit) {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                let v = text
                    .parse::<i64>()
                    .map_err(|_| Error::Parse(format!("bad integer `{text}`")))?;
                Ok(Term::Const(Value::Int(v)))
            }
            Some(c) if c.is_alphabetic() || c == '_' => Ok(Term::Var(self.ident()?)),
            other => Err(Error::Parse(format!(
                "expected term, found {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn atom(&mut self) -> Result<Atom> {
        let predicate = self.ident()?;
        self.eat('(')?;
        let mut terms = Vec::new();
        if self.peek() != Some(')') {
            loop {
                terms.push(self.term()?);
                match self.peek() {
                    Some(',') => {
                        self.pos += 1;
                    }
                    Some(')') => break,
                    other => {
                        return Err(Error::Parse(format!(
                            "expected `,` or `)`, found {other:?}"
                        )))
                    }
                }
            }
        }
        self.eat(')')?;
        Ok(Atom { predicate, terms })
    }
}

/// Parse a conjunctive query.
pub fn parse_query(text: &str) -> Result<ConjunctiveQuery> {
    let mut lx = Lexer::new(text);
    let head = lx.atom()?;
    let mut head_vars = Vec::new();
    for t in &head.terms {
        match t {
            Term::Var(v) => head_vars.push(v.clone()),
            Term::Const(_) => return Err(Error::Parse("head terms must be variables".to_string())),
        }
    }
    lx.eat_str(":-")?;
    let mut body = vec![lx.atom()?];
    while lx.peek() == Some(',') {
        lx.pos += 1;
        body.push(lx.atom()?);
    }
    if lx.peek() == Some('.') {
        lx.pos += 1;
    }
    lx.skip_ws();
    if lx.pos != lx.chars.len() {
        return Err(Error::Parse(format!("trailing input at offset {}", lx.pos)));
    }
    let q = ConjunctiveQuery {
        head_name: head.predicate,
        head_vars,
        body,
    };
    if !q.is_safe() {
        return Err(Error::Parse(
            "unsafe query: every head variable must occur in the body".to_string(),
        ));
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_query() {
        let q = parse_query("Q(x, z) :- R(x, y), S(y, z).").unwrap();
        assert_eq!(q.head_name, "Q");
        assert_eq!(q.head_vars, vec!["x", "z"]);
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.body[1].predicate, "S");
    }

    #[test]
    fn parses_constants() {
        let q = parse_query(r#"Q(x) :- R(x, 3), S(x, "hello")."#).unwrap();
        assert_eq!(q.body[0].terms[1], Term::Const(Value::Int(3)));
        assert_eq!(q.body[1].terms[1], Term::Const(Value::str("hello")));
    }

    #[test]
    fn negative_integer_constant() {
        let q = parse_query("Q(x) :- R(x, -5).").unwrap();
        assert_eq!(q.body[0].terms[1], Term::Const(Value::Int(-5)));
    }

    #[test]
    fn optional_period_and_whitespace() {
        assert!(parse_query("Q(x):-R(x,y)").is_ok());
        assert!(parse_query("  Q( x ) :- R( x , y ) .  ").is_ok());
    }

    #[test]
    fn rejects_unsafe_head() {
        assert!(parse_query("Q(w) :- R(x, y).").is_err());
    }

    #[test]
    fn rejects_constant_in_head() {
        assert!(parse_query("Q(3) :- R(x, y).").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("").is_err());
        assert!(parse_query("Q(x)").is_err());
        assert!(parse_query("Q(x) :- ").is_err());
        assert!(parse_query("Q(x) :- R(x,, y).").is_err());
        assert!(parse_query("Q(x) :- R(x) extra").is_err());
        assert!(parse_query(r#"Q(x) :- R(x, "unterminated)."#).is_err());
    }

    #[test]
    fn nullary_head_is_boolean_query() {
        let q = parse_query("Q() :- R(x, y).").unwrap();
        assert!(q.head_vars.is_empty());
        assert!(q.is_safe());
    }

    #[test]
    fn display_parse_roundtrip() {
        let text = r#"Q(x, z) :- R(x, y), S(y, z), T(y, 3)."#;
        let q = parse_query(text).unwrap();
        assert_eq!(parse_query(&q.to_string()).unwrap(), q);
    }
}
