//! Compiling and executing conjunctive queries through the paper's pipeline.
//!
//! Execution proceeds in four stages:
//!
//! 1. **Atom binding** — each body atom becomes a relation over *variable*
//!    attributes: constants select, repeated variables within an atom filter,
//!    columns are renamed to their variables.
//! 2. **Planning** — the bound relations form a database scheme (hyperedges
//!    = each atom's variable set). Per connected component, an optimizer
//!    picks a join tree, and Algorithms 1–2 compile it to a program.
//! 3. **Execution** — the programs run with §2.3 cost accounting; component
//!    results are combined (a Cartesian product *across* components is
//!    semantically forced, not an ordering accident).
//! 4. **Projection** — the full join is projected onto the head variables.

use crate::ast::{Atom, ConjunctiveQuery, Term};
use crate::minimize::{differential_validate, minimize};
use crate::storage::NamedDatabase;
use mjoin_analyze::{memory_report, AnalysisCx, Certificate};
use mjoin_core::{derive, run_pipeline_with, FirstChoice};
use mjoin_expr::JoinTree;
use mjoin_hypergraph::{agm_ln, bound_u64, DbScheme};
use mjoin_optimizer::{greedy, optimize, EstimateOracle, SearchSpace};
use mjoin_program::{ExecConfig, SharedIndexCache};
use mjoin_relation::{
    ops, AttrId, Catalog, CostLedger, Database, Error, Relation, Result, Row, Schema, Value,
};
use mjoin_wcoj::{select, wcoj_join, ExecutorKind};
use std::sync::Arc;

/// How to choose each component's join tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanStrategy {
    /// Greedy smallest-result with the avoid-Cartesian rule (default).
    Greedy,
    /// Exact DP over all trees (exponential; small components only).
    DpOptimal,
    /// Exact DP over CPF trees.
    DpCpf,
    /// Exact DP over linear (left-deep) trees.
    DpLinear,
}

/// Execution knobs beyond the planning strategy: which executor runs each
/// component, how many threads a program execution may use, an optional
/// shared index cache (the resident server's — hash indices and sorted
/// tries both live in it), and whether to core-minimize the query first.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Executor choice ([`ExecutorKind::Program`] is the default; `Auto`
    /// compares bounds per component).
    pub executor: ExecutorKind,
    /// Threads for program execution (`0`/`1` = sequential).
    pub threads: usize,
    /// Shared index cache for trie views (WCOJ path). `None` builds
    /// per-query throwaway tries.
    pub cache: Option<SharedIndexCache>,
    /// Core-minimize the query before binding (**on** by default; the
    /// `--minimize=off` opt-out). Rewrites are applied only under a
    /// verified two-way homomorphism proof plus differential execution
    /// against the unminimized query on generated databases.
    pub minimize: bool,
    /// Per-statement memory budget in bytes. When set, each component's
    /// derived program gets a static memory certificate
    /// ([`mjoin_analyze::memory_report`]) and any join whose certified
    /// build-side bytes exceed the budget runs the Grace-hash spill path —
    /// decided before execution starts, never at runtime. `None` (the
    /// default) keeps every statement in memory.
    pub mem_budget: Option<u64>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            executor: ExecutorKind::default(),
            threads: 0,
            cache: None,
            minimize: true,
            mem_budget: None,
        }
    }
}

/// What core minimization did to a query, with the hypergraph bounds it
/// moved: AGM fractional-cover bounds of the query's join hypergraph
/// (stored relation sizes, constants not yet applied) before and after.
#[derive(Debug, Clone)]
pub struct MinimizeSummary {
    /// Body atoms before minimization.
    pub atoms_before: usize,
    /// Body atoms in the compiled core.
    pub atoms_after: usize,
    /// The dropped atoms, rendered.
    pub dropped: Vec<String>,
    /// AGM bound of the original query's hypergraph.
    pub agm_before: u64,
    /// AGM bound of the core's hypergraph (equal when nothing dropped).
    pub agm_after: u64,
}

/// How one connected component of a query was executed, with the bounds
/// that justified the choice (populated in `auto` mode; a forced executor
/// reports only what it computed).
#[derive(Debug, Clone)]
pub struct ComponentDecision {
    /// The component, as a relation-index set (e.g. `{0, 2}`).
    pub component: String,
    /// The executor the component actually ran on (never `Auto`).
    pub executor: ExecutorKind,
    /// AGM bound of the component hypergraph, when computed.
    pub agm_bound: Option<u64>,
    /// Theorem-2 certificate bound of the chosen program (evaluated with
    /// AGM sub-bounds), when a program was derived.
    pub cert_bound: Option<u64>,
}

/// The answer to a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result relation over the head variables' attributes.
    pub relation: Relation,
    /// Attribute id of each head variable, in head order.
    pub head_attrs: Vec<AttrId>,
    /// The query-side catalog (variable names).
    pub catalog: Catalog,
    /// Total §2.3 cost across binding, programs, and projection.
    pub ledger: CostLedger,
    /// What minimization did (`None` when it was skipped — opted out,
    /// single-atom body, or unresolvable predicates).
    pub minimize: Option<MinimizeSummary>,
}

impl QueryResult {
    /// Result tuples with columns in *head-variable order* (the relation
    /// itself stores canonical order), sorted for determinism.
    pub fn rows_in_head_order(&self) -> Vec<Vec<Value>> {
        let positions: Vec<usize> = self
            .head_attrs
            .iter()
            .map(|&a| {
                self.relation
                    .schema()
                    .position(a)
                    .expect("head attr in result")
            })
            .collect();
        let mut rows: Vec<Vec<Value>> = self
            .relation
            .rows()
            .iter()
            .map(|r| positions.iter().map(|&p| r[p].clone()).collect())
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Number of result tuples.
    pub fn len(&self) -> usize {
        self.relation.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }
}

/// Bind one atom: produce a relation over its variables' attributes.
///
/// All-constant atoms bind to the nullary unit (condition true) or the empty
/// nullary relation (condition false).
fn bind_atom(ndb: &NamedDatabase, atom: &Atom, qcat: &mut Catalog) -> Result<Relation> {
    let stored = ndb
        .get(&atom.predicate)
        .ok_or_else(|| Error::Parse(format!("unknown relation `{}`", atom.predicate)))?;
    if atom.terms.len() != stored.columns.len() {
        return Err(Error::ArityMismatch {
            expected: stored.columns.len(),
            got: atom.terms.len(),
        });
    }

    // For each term, the canonical position of its column in the stored rows.
    let positions: Vec<usize> = (0..atom.terms.len())
        .map(|i| stored.canonical_position(i))
        .collect();

    // Variables in first-use order, with the positions they must agree on.
    let mut var_attrs: Vec<AttrId> = Vec::new();
    let mut var_first_pos: Vec<usize> = Vec::new();
    let mut checks: Vec<(usize, usize)> = Vec::new(); // equal-position pairs
    let mut const_checks: Vec<(usize, Value)> = Vec::new();
    let mut seen: Vec<(&str, usize)> = Vec::new();
    for (i, term) in atom.terms.iter().enumerate() {
        match term {
            Term::Const(v) => const_checks.push((positions[i], v.clone())),
            Term::Var(name) => match seen.iter().find(|(n, _)| n == name) {
                Some(&(_, first)) => checks.push((positions[first], positions[i])),
                None => {
                    seen.push((name, i));
                    var_attrs.push(qcat.intern(name));
                    var_first_pos.push(positions[i]);
                }
            },
        }
    }

    let out_schema = Schema::new(var_attrs.clone());
    // Destination position of each variable's value in the canonical output.
    let dest: Vec<usize> = var_attrs
        .iter()
        .map(|&a| out_schema.position(a).expect("interned"))
        .collect();

    let mut out_rows: Vec<Row> = Vec::new();
    'rows: for row in stored.relation.rows() {
        for (pos, v) in &const_checks {
            if &row[*pos] != v {
                continue 'rows;
            }
        }
        for (p1, p2) in &checks {
            if row[*p1] != row[*p2] {
                continue 'rows;
            }
        }
        let mut out = vec![Value::Int(0); var_attrs.len()];
        for (vi, &src) in var_first_pos.iter().enumerate() {
            out[dest[vi]] = row[src].clone();
        }
        out_rows.push(out.into());
    }
    Relation::from_rows(out_schema, out_rows)
}

/// Execute `query` against `ndb` on the default (program) executor.
pub fn execute_query(
    ndb: &NamedDatabase,
    query: &ConjunctiveQuery,
    strategy: PlanStrategy,
) -> Result<QueryResult> {
    execute_query_with(ndb, query, strategy, &ExecOptions::default()).map(|(r, _)| r)
}

/// Execute `query` against `ndb` with explicit executor options, returning
/// the per-component executor decisions alongside the result (for
/// `--explain`-style surfaces).
pub fn execute_query_with(
    ndb: &NamedDatabase,
    query: &ConjunctiveQuery,
    strategy: PlanStrategy,
    opts: &ExecOptions,
) -> Result<(QueryResult, Vec<ComponentDecision>)> {
    if !query.is_safe() {
        return Err(Error::Parse("unsafe query".to_string()));
    }

    // Stage 0: core minimization (opt-out). Only attempted when every
    // predicate resolves (so unknown-relation/arity errors surface exactly
    // as they would unminimized), and only applied under a verified two-way
    // homomorphism proof *plus* differential execution of original vs core
    // on small generated databases.
    let (core, min_summary) = minimize_for_compile(ndb, query, opts);
    let query = core.as_ref().unwrap_or(query);

    let mut qcat = Catalog::new();
    let mut ledger = CostLedger::new();
    let mut decisions: Vec<ComponentDecision> = Vec::new();

    // Stage 1: bind atoms. Boolean (nullary) bindings fold into a flag.
    let mut bound: Vec<Relation> = Vec::new();
    let mut boolean_false = false;
    for atom in &query.body {
        let rel = bind_atom(ndb, atom, &mut qcat)?;
        ledger.charge_input(format!("bind {atom}"), rel.len());
        if rel.schema().is_empty() {
            if rel.is_empty() {
                boolean_false = true;
            }
            // A satisfied all-constant atom adds no join constraint.
        } else {
            bound.push(rel);
        }
    }

    let head_attrs: Vec<AttrId> = query
        .head_vars
        .iter()
        .map(|v| {
            qcat.lookup(v)
                .ok_or_else(|| Error::Parse(format!("head variable `{v}` unbound")))
        })
        .collect::<Result<_>>()?;
    let head_schema = Schema::new(head_attrs.clone());

    if boolean_false || bound.iter().any(mjoin_relation::Relation::is_empty) {
        return Ok((
            QueryResult {
                relation: Relation::empty(head_schema),
                head_attrs,
                catalog: qcat,
                ledger,
                minimize: min_summary,
            },
            decisions,
        ));
    }
    if bound.is_empty() {
        // All atoms were satisfied constants: the answer is the unit.
        return Ok((
            QueryResult {
                relation: Relation::nullary_unit(),
                head_attrs,
                catalog: qcat,
                ledger,
                minimize: min_summary,
            },
            decisions,
        ));
    }

    // Stage 2+3: per connected component, plan and run either executor.
    let db = Database::from_relations(bound);
    let scheme = DbScheme::from_schemas(&db.schemas());
    let mut full = Relation::nullary_unit();
    for comp in scheme.components(scheme.all()) {
        let indices = comp.to_vec();
        let comp_db = db.restrict(&indices);
        let comp_scheme = DbScheme::from_schemas(&comp_db.schemas());
        let comp_result = if indices.len() == 1 {
            Arc::new(comp_db.relation(0).clone())
        } else {
            let (result, decision) = run_component(
                &comp_scheme,
                &comp_db,
                &qcat,
                strategy,
                opts,
                &comp.to_string(),
                &mut ledger,
            )?;
            decisions.push(decision);
            result
        };
        // Cross-component combination: a forced Cartesian product.
        full = ops::join(&full, &comp_result);
        ledger.charge_generated(format!("combine component {comp}"), full.len());
    }

    // Stage 4: the head projection.
    let relation = ops::project(&full, head_schema.attrs())?;
    ledger.charge_generated("head projection", relation.len());
    Ok((
        QueryResult {
            relation,
            head_attrs,
            catalog: qcat,
            ledger,
            minimize: min_summary,
        },
        decisions,
    ))
}

/// Differential-validation budget: beyond this many body atoms, the naive
/// validator could get expensive, so compile trusts the (already verified)
/// homomorphism proof alone.
const DIFF_VALIDATE_MAX_ATOMS: usize = 8;

/// Stage 0 of [`execute_query_with`]: compute the core and decide whether to
/// compile it. Returns the replacement query (if any) and the summary for
/// the result (if minimization ran at all).
fn minimize_for_compile(
    ndb: &NamedDatabase,
    query: &ConjunctiveQuery,
    opts: &ExecOptions,
) -> (Option<ConjunctiveQuery>, Option<MinimizeSummary>) {
    let resolvable = query.body.iter().all(|atom| {
        ndb.get(&atom.predicate)
            .is_some_and(|s| s.columns.len() == atom.terms.len())
    });
    if !opts.minimize || query.body.len() < 2 || !resolvable {
        return (None, None);
    }
    let m = minimize(query);
    if !m.proof.verified {
        return (None, None);
    }
    if m.proof.dropped.is_empty() {
        let agm = query_agm_bound(ndb, &query.body);
        return (
            None,
            Some(MinimizeSummary {
                atoms_before: query.body.len(),
                atoms_after: query.body.len(),
                dropped: Vec::new(),
                agm_before: agm,
                agm_after: agm,
            }),
        );
    }
    // Dynamic check on top of the static proof; a failure (which a verified
    // proof rules out, but the check is cheap insurance) rejects the rewrite.
    if query.body.len() <= DIFF_VALIDATE_MAX_ATOMS
        && differential_validate(query, &m.core, 0x517c_c1b7_2722_0a95, 2).is_err()
    {
        return (None, None);
    }
    let summary = MinimizeSummary {
        atoms_before: query.body.len(),
        atoms_after: m.core.body.len(),
        dropped: m
            .proof
            .dropped
            .iter()
            .map(|&i| query.body[i].to_string())
            .collect(),
        agm_before: query_agm_bound(ndb, &query.body),
        agm_after: query_agm_bound(ndb, &m.core.body),
    };
    (Some(m.core), Some(summary))
}

/// AGM fractional-cover bound of a query's join hypergraph, evaluated with
/// *stored* relation sizes (before constant selection): one hyperedge per
/// atom with at least one variable, weighted by its relation's cardinality.
/// All-constant atoms contribute nothing; a body with no variables bounds
/// at 1 (the nullary unit).
pub fn query_agm_bound(ndb: &NamedDatabase, body: &[Atom]) -> u64 {
    let mut cat = Catalog::new();
    let mut schemas: Vec<Schema> = Vec::new();
    let mut sizes: Vec<u64> = Vec::new();
    for atom in body {
        let vars = atom.variables();
        if vars.is_empty() {
            continue;
        }
        let attrs: Vec<AttrId> = vars.iter().map(|v| cat.intern(v)).collect();
        schemas.push(Schema::new(attrs));
        let size = ndb.get(&atom.predicate).map_or(0, |s| s.relation.len());
        sizes.push(size as u64);
    }
    if schemas.is_empty() {
        return 1;
    }
    let scheme = DbScheme::from_schemas(&schemas);
    bound_u64(agm_ln(&scheme, scheme.all(), &sizes))
}

/// Run one multi-relation component on the executor `opts` calls for.
///
/// `Auto` derives the strategy-chosen program first, computes its Theorem-2
/// certificate, and compares the certificate bound (evaluated with AGM
/// sub-bounds) against the component's AGM bound — WCOJ runs exactly when
/// its bound is strictly smaller (see [`mjoin_wcoj::select`]). Ties and
/// wins go to the program path, preserving the engine's §2.3 cost story.
fn run_component(
    comp_scheme: &DbScheme,
    comp_db: &Database,
    qcat: &Catalog,
    strategy: PlanStrategy,
    opts: &ExecOptions,
    comp_name: &str,
    ledger: &mut CostLedger,
) -> Result<(Arc<Relation>, ComponentDecision)> {
    let sizes: Vec<u64> = comp_db.relations().iter().map(|r| r.len() as u64).collect();
    let run_wcoj = |ledger: &mut CostLedger| -> Arc<Relation> {
        let rel = wcoj_join(comp_scheme, comp_db, opts.cache.as_ref());
        ledger.charge_generated(format!("wcoj over component {comp_name}"), rel.len());
        Arc::new(rel)
    };
    let run_program = |tree: &JoinTree, ledger: &mut CostLedger| -> Result<Arc<Relation>> {
        let run = run_pipeline_with(comp_scheme, tree, comp_db, &mut FirstChoice, |d| {
            let mut cfg = ExecConfig::with_threads(opts.threads);
            if let Some(budget) = opts.mem_budget {
                cfg.mem_budget = Some(budget);
                // Certify the derived program and gate the spill path on
                // the certificate — an unanalyzable program (which the
                // pipeline never produces) just runs unspilled.
                if let Ok(cx) = AnalysisCx::new(&d.program, comp_scheme, qcat) {
                    let plan = memory_report(&cx, &sizes).spill_plan(budget);
                    if plan.any() {
                        cfg.spill = Some(Arc::new(plan));
                    }
                }
            }
            cfg
        })
        .map_err(|e| Error::Parse(e.to_string()))?;
        // Program cost minus the inputs (already charged at binding).
        ledger.charge_generated(
            format!("program over component {comp_name}"),
            (run.program_cost() - comp_db.total_tuples()) as usize,
        );
        Ok(run.exec.result)
    };

    match opts.executor {
        ExecutorKind::Wcoj => {
            let agm = bound_u64(agm_ln(comp_scheme, comp_scheme.all(), &sizes));
            Ok((
                run_wcoj(ledger),
                ComponentDecision {
                    component: comp_name.to_string(),
                    executor: ExecutorKind::Wcoj,
                    agm_bound: Some(agm),
                    cert_bound: None,
                },
            ))
        }
        ExecutorKind::Program => {
            let tree = pick_tree(comp_scheme, comp_db, strategy)?;
            Ok((
                run_program(&tree, ledger)?,
                ComponentDecision {
                    component: comp_name.to_string(),
                    executor: ExecutorKind::Program,
                    agm_bound: None,
                    cert_bound: None,
                },
            ))
        }
        ExecutorKind::Auto => {
            let tree = pick_tree(comp_scheme, comp_db, strategy)?;
            let derivation = derive(comp_scheme, &tree).map_err(|e| Error::Parse(e.to_string()))?;
            let cx = AnalysisCx::new(&derivation.program, comp_scheme, qcat)
                .map_err(|e| Error::Parse(e.to_string()))?;
            let cert = Certificate::compute(&cx);
            let sel = select(comp_scheme, &sizes, &cert);
            let result = if sel.use_wcoj {
                run_wcoj(ledger)
            } else {
                run_program(&tree, ledger)?
            };
            Ok((
                result,
                ComponentDecision {
                    component: comp_name.to_string(),
                    executor: if sel.use_wcoj {
                        ExecutorKind::Wcoj
                    } else {
                        ExecutorKind::Program
                    },
                    agm_bound: Some(sel.agm_bound),
                    cert_bound: Some(sel.cert_bound),
                },
            ))
        }
    }
}

/// Reference executor: bind atoms, fold-join them naively (in body order,
/// Cartesian products and all), project. Used as the differential-testing
/// oracle for [`execute_query`]; do not use it for anything performance
/// sensitive.
pub fn execute_query_naive(ndb: &NamedDatabase, query: &ConjunctiveQuery) -> Result<Relation> {
    if !query.is_safe() {
        return Err(Error::Parse("unsafe query".to_string()));
    }
    let mut qcat = Catalog::new();
    let mut acc = Relation::nullary_unit();
    for atom in &query.body {
        let rel = bind_atom(ndb, atom, &mut qcat)?;
        acc = ops::join(&acc, &rel);
    }
    let head_attrs: Vec<AttrId> = query
        .head_vars
        .iter()
        .map(|v| {
            qcat.lookup(v)
                .ok_or_else(|| Error::Parse(format!("head variable `{v}` unbound")))
        })
        .collect::<Result<_>>()?;
    ops::project(&acc, Schema::new(head_attrs).attrs())
}

fn pick_tree(scheme: &DbScheme, db: &Database, strategy: PlanStrategy) -> Result<JoinTree> {
    // Estimation-based tree search (the same call the server's query path
    // makes): the exact oracle would *materialize* every candidate subjoin
    // it ranks — including the Cartesian pairs the greedy scan probes —
    // which on queries with repeated predicates costs more than the join
    // being planned.
    let mut oracle = EstimateOracle::new(scheme, db);
    let tree = match strategy {
        PlanStrategy::Greedy => greedy(scheme, &mut oracle, true).0,
        PlanStrategy::DpOptimal => {
            optimize(scheme, &mut oracle, SearchSpace::All)
                .ok_or_else(|| Error::Parse("empty search space".to_string()))?
                .tree
        }
        PlanStrategy::DpCpf => {
            optimize(scheme, &mut oracle, SearchSpace::Cpf)
                .ok_or_else(|| Error::Parse("empty CPF search space".to_string()))?
                .tree
        }
        PlanStrategy::DpLinear => {
            optimize(scheme, &mut oracle, SearchSpace::Linear)
                .ok_or_else(|| Error::Parse("empty linear search space".to_string()))?
                .tree
        }
    };
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn graph_db() -> NamedDatabase {
        let mut db = NamedDatabase::new();
        db.add_relation(
            "edge",
            &["src", "dst"],
            &[&[1, 2], &[2, 3], &[3, 4], &[4, 1], &[2, 5]],
        )
        .unwrap();
        db.add_relation(
            "label",
            &["node", "tag"],
            &[&[2, 100], &[3, 100], &[5, 200]],
        )
        .unwrap();
        db
    }

    fn run(db: &NamedDatabase, text: &str) -> QueryResult {
        let q = parse_query(text).unwrap();
        execute_query(db, &q, PlanStrategy::Greedy).unwrap()
    }

    #[test]
    fn two_hop_paths() {
        let db = graph_db();
        let res = run(&db, "Q(x, z) :- edge(x, y), edge(y, z).");
        let rows = res.rows_in_head_order();
        assert!(rows.contains(&vec![Value::Int(1), Value::Int(3)]));
        assert!(rows.contains(&vec![Value::Int(1), Value::Int(5)]));
        assert!(rows.contains(&vec![Value::Int(4), Value::Int(2)]));
        assert_eq!(rows.len(), 5); // 1→3, 1→5, 2→4, 3→1, 4→2
    }

    #[test]
    fn triangle_query_on_cycle() {
        // The 4-cycle has no triangle.
        let db = graph_db();
        let res = run(&db, "Q(x, y, z) :- edge(x, y), edge(y, z), edge(z, x).");
        assert!(res.is_empty());
    }

    #[test]
    fn four_cycle_query() {
        let db = graph_db();
        let res = run(
            &db,
            "Q(a, b, c, d) :- edge(a, b), edge(b, c), edge(c, d), edge(d, a).",
        );
        assert_eq!(res.len(), 4); // the 4-cycle, from each starting point
    }

    #[test]
    fn constants_select() {
        let db = graph_db();
        let res = run(&db, "Q(x) :- edge(x, y), label(y, 100).");
        let rows = res.rows_in_head_order();
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = NamedDatabase::new();
        db.add_relation("r", &["a", "b"], &[&[1, 1], &[1, 2], &[3, 3]])
            .unwrap();
        let res = run(&db, "Q(x) :- r(x, x).");
        assert_eq!(
            res.rows_in_head_order(),
            vec![vec![Value::Int(1)], vec![Value::Int(3)]]
        );
    }

    #[test]
    fn boolean_query() {
        let db = graph_db();
        let yes = run(&db, "Q() :- edge(x, y), label(y, 200).");
        assert_eq!(yes.len(), 1);
        let no = run(&db, "Q() :- edge(x, y), label(y, 999).");
        assert!(no.is_empty());
    }

    #[test]
    fn all_constant_atom_is_a_condition() {
        let db = graph_db();
        let yes = run(&db, "Q(x) :- edge(x, 2), label(2, 100).");
        assert_eq!(yes.rows_in_head_order(), vec![vec![Value::Int(1)]]);
        let no = run(&db, "Q(x) :- edge(x, 2), label(2, 999).");
        assert!(no.is_empty());
    }

    #[test]
    fn disconnected_components_cross_product() {
        let mut db = NamedDatabase::new();
        db.add_relation("r", &["a"], &[&[1], &[2]]).unwrap();
        db.add_relation("s", &["b"], &[&[10]]).unwrap();
        let res = run(&db, "Q(x, y) :- r(x), s(y).");
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn strategies_agree() {
        let db = graph_db();
        let q = parse_query("Q(x, z) :- edge(x, y), edge(y, z), label(z, t).").unwrap();
        let a = execute_query(&db, &q, PlanStrategy::Greedy).unwrap();
        let b = execute_query(&db, &q, PlanStrategy::DpOptimal).unwrap();
        let c = execute_query(&db, &q, PlanStrategy::DpCpf).unwrap();
        let d = execute_query(&db, &q, PlanStrategy::DpLinear).unwrap();
        assert_eq!(a.rows_in_head_order(), b.rows_in_head_order());
        assert_eq!(a.rows_in_head_order(), c.rows_in_head_order());
        assert_eq!(a.rows_in_head_order(), d.rows_in_head_order());
    }

    #[test]
    fn executors_agree_and_auto_reports_bounds() {
        let mut db = NamedDatabase::new();
        // A graph with triangles: 0–1–2, 0–2–3 share edge 0–2.
        db.add_relation(
            "e",
            &["a", "b"],
            &[&[0, 1], &[1, 2], &[0, 2], &[2, 3], &[0, 3], &[2, 0]],
        )
        .unwrap();
        let q = parse_query("Q(x, y, z) :- e(x, y), e(y, z), e(z, x).").unwrap();
        let prog = execute_query_with(&db, &q, PlanStrategy::Greedy, &ExecOptions::default())
            .unwrap()
            .0;
        let wcoj = execute_query_with(
            &db,
            &q,
            PlanStrategy::Greedy,
            &ExecOptions {
                executor: ExecutorKind::Wcoj,
                ..ExecOptions::default()
            },
        )
        .unwrap()
        .0;
        let (auto, decisions) = execute_query_with(
            &db,
            &q,
            PlanStrategy::Greedy,
            &ExecOptions {
                executor: ExecutorKind::Auto,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        assert_eq!(prog.rows_in_head_order(), wcoj.rows_in_head_order());
        assert_eq!(prog.rows_in_head_order(), auto.rows_in_head_order());
        assert_eq!(decisions.len(), 1);
        let d = &decisions[0];
        assert!(d.agm_bound.is_some() && d.cert_bound.is_some());
        assert_ne!(
            d.executor,
            ExecutorKind::Auto,
            "auto resolves to a real executor"
        );
        // The invariant behind `auto`: the selected executor's stated bound
        // is never the strictly larger one.
        if d.executor == ExecutorKind::Wcoj {
            assert!(d.agm_bound.unwrap() < d.cert_bound.unwrap());
        } else {
            assert!(d.agm_bound.unwrap() >= d.cert_bound.unwrap());
        }
    }

    #[test]
    fn unknown_relation_and_bad_arity() {
        let db = graph_db();
        let q = parse_query("Q(x) :- nope(x).").unwrap();
        assert!(execute_query(&db, &q, PlanStrategy::Greedy).is_err());
        let q = parse_query("Q(x) :- edge(x).").unwrap();
        assert!(execute_query(&db, &q, PlanStrategy::Greedy).is_err());
    }

    #[test]
    fn cost_ledger_populated() {
        let db = graph_db();
        let res = run(&db, "Q(x, z) :- edge(x, y), edge(y, z).");
        assert!(res.ledger.total() > 0);
        assert!(res.ledger.input_total() >= 10); // two bindings of 5 edges
    }

    #[test]
    fn head_order_respected() {
        let db = graph_db();
        // Same query, reversed head: columns must come back reversed.
        let a = run(&db, "Q(x, z) :- edge(x, y), edge(y, z).");
        let b = run(&db, "Q(z, x) :- edge(x, y), edge(y, z).");
        let swapped: Vec<Vec<Value>> = {
            let mut v: Vec<Vec<Value>> = a
                .rows_in_head_order()
                .into_iter()
                .map(|r| vec![r[1].clone(), r[0].clone()])
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(b.rows_in_head_order(), swapped);
    }
}
