//! Recursive Datalog over the conjunctive-query engine: semi-naive fixpoint
//! evaluation of positive rule sets.
//!
//! The paper's opening motivation is "relational and *deductive* database
//! systems"; this module is the deductive half. A program is a list of rules
//! (each syntactically a [`ConjunctiveQuery`]); predicates that appear in a
//! head are *intensional* (IDB, derived), everything else must be stored in
//! the [`NamedDatabase`] (EDB). Evaluation runs the classic semi-naive
//! fixpoint: each iteration rewrites every rule once per recursive body atom,
//! binding that atom to the previous iteration's *delta*, so work is
//! proportional to new facts — and every rule body is planned and executed
//! through the paper's join/semijoin/projection pipeline.

use crate::ast::ConjunctiveQuery;
use crate::compile::{execute_query, PlanStrategy};
use crate::storage::NamedDatabase;
use mjoin_relation::fxhash::{FxHashMap, FxHashSet};
use mjoin_relation::{Error, Result, Row, Value};

/// The result of evaluating a Datalog program: each IDB predicate's facts
/// (tuples in head-variable order) plus iteration statistics.
#[derive(Debug, Clone)]
pub struct DatalogResult {
    /// Facts per IDB predicate, sorted, in head order.
    pub facts: FxHashMap<String, Vec<Vec<Value>>>,
    /// Number of semi-naive iterations until the fixpoint (0 = the seed
    /// round only).
    pub iterations: usize,
    /// Total §2.3 cost across every rule-body execution.
    pub total_cost: u64,
}

impl DatalogResult {
    /// Facts of one predicate (empty slice if it derived nothing).
    pub fn facts_of(&self, predicate: &str) -> &[Vec<Value>] {
        self.facts.get(predicate).map_or(&[], |v| v.as_slice())
    }
}

/// Column names `c0, c1, …` for derived predicates.
fn idb_columns(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("c{i}")).collect()
}

/// The delta predicate's working name (a character no parser identifier can
/// contain keeps it from colliding with user predicates).
fn delta_name(pred: &str) -> String {
    format!("Δ{pred}")
}

/// Validate the rule set and collect the IDB arity map.
fn idb_arities(
    edb: &NamedDatabase,
    rules: &[ConjunctiveQuery],
) -> Result<FxHashMap<String, usize>> {
    let mut arities: FxHashMap<String, usize> = FxHashMap::default();
    for rule in rules {
        if !rule.is_safe() {
            return Err(Error::Parse(format!("unsafe rule: {rule}")));
        }
        if edb.get(&rule.head_name).is_some() {
            return Err(Error::Parse(format!(
                "head predicate `{}` is a stored (EDB) relation",
                rule.head_name
            )));
        }
        match arities.get(&rule.head_name) {
            Some(&a) if a != rule.head_vars.len() => {
                return Err(Error::Parse(format!(
                    "predicate `{}` used with arities {a} and {}",
                    rule.head_name,
                    rule.head_vars.len()
                )))
            }
            _ => {
                arities.insert(rule.head_name.clone(), rule.head_vars.len());
            }
        }
    }
    // Every body predicate must be EDB or IDB.
    for rule in rules {
        for atom in &rule.body {
            if edb.get(&atom.predicate).is_none() && !arities.contains_key(&atom.predicate) {
                return Err(Error::Parse(format!(
                    "unknown predicate `{}` in rule {rule}",
                    atom.predicate
                )));
            }
        }
    }
    Ok(arities)
}

/// Evaluate `rules` against `edb` to the least fixpoint.
///
/// ```
/// use mjoin_cq::{evaluate_datalog, parse_rules, NamedDatabase, PlanStrategy};
///
/// let mut edb = NamedDatabase::new();
/// edb.add_relation("e", &["s", "d"], &[&[0, 1], &[1, 2], &[2, 3]]).unwrap();
/// let rules = parse_rules(
///     "t(x, y) :- e(x, y). t(x, z) :- t(x, y), e(y, z).",
/// ).unwrap();
/// let result = evaluate_datalog(&edb, &rules, PlanStrategy::Greedy).unwrap();
/// // Transitive closure of the 4-node chain: 6 pairs.
/// assert_eq!(result.facts_of("t").len(), 6);
/// ```
pub fn evaluate_datalog(
    edb: &NamedDatabase,
    rules: &[ConjunctiveQuery],
    strategy: PlanStrategy,
) -> Result<DatalogResult> {
    let arities = idb_arities(edb, rules)?;
    let mut fix_sp = mjoin_trace::span("datalog", "fixpoint");
    if fix_sp.is_active() {
        fix_sp.arg("rules", rules.len());
        fix_sp.arg("idb_predicates", arities.len());
    }
    let idb_names: Vec<String> = {
        let mut v: Vec<String> = arities.keys().cloned().collect();
        v.sort();
        v
    };

    // Fact sets (row-level, in head order) and current deltas.
    let mut facts: FxHashMap<String, FxHashSet<Row>> = FxHashMap::default();
    let mut delta: FxHashMap<String, Vec<Row>> = FxHashMap::default();
    for p in &idb_names {
        facts.insert(p.clone(), FxHashSet::default());
        delta.insert(p.clone(), Vec::new());
    }
    let mut total_cost = 0u64;

    // Working database: EDB + IDB snapshots + deltas.
    let mut work = edb.clone();
    let refresh = |work: &mut NamedDatabase,
                   facts: &FxHashMap<String, FxHashSet<Row>>,
                   delta: &FxHashMap<String, Vec<Row>>,
                   arities: &FxHashMap<String, usize>|
     -> Result<()> {
        for (p, rows) in facts {
            let arity = arities[p];
            let cols = idb_columns(arity);
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            let tuples: Vec<Vec<Value>> = rows.iter().map(|r| r.to_vec()).collect();
            work.set_relation_values(p, &col_refs, tuples)?;
            let dtuples: Vec<Vec<Value>> = delta[p].iter().map(|r| r.to_vec()).collect();
            work.set_relation_values(&delta_name(p), &col_refs, dtuples)?;
        }
        Ok(())
    };
    refresh(&mut work, &facts, &delta, &arities)?;

    // Seed round: every rule evaluated as-is (recursive rules contribute
    // nothing yet because IDB relations are empty).
    let mut new_delta: FxHashMap<String, Vec<Row>> = FxHashMap::default();
    {
        let mut sp = mjoin_trace::span("datalog", "iteration");
        for rule in rules {
            let res = execute_query(&work, rule, strategy)?;
            total_cost += res.ledger.total();
            for row in res.rows_in_head_order() {
                let row: Row = row.into();
                if !facts[&rule.head_name].contains(&row) {
                    new_delta
                        .entry(rule.head_name.clone())
                        .or_default()
                        .push(row);
                }
            }
        }
        if sp.is_active() {
            sp.arg("iteration", 0usize);
            sp.arg("rules_fired", rules.len());
            sp.arg("delta_rows", 0usize);
            sp.arg("new_rows", new_delta.values().map(Vec::len).sum::<usize>());
        }
    }

    let mut iterations = 0usize;
    loop {
        // Fold the fresh facts in.
        let mut grew = false;
        for p in &idb_names {
            let fresh = new_delta.remove(p).unwrap_or_default();
            let mut dedup: Vec<Row> = Vec::new();
            let set = facts.get_mut(p).expect("initialized");
            for row in fresh {
                if set.insert(row.clone()) {
                    dedup.push(row);
                }
            }
            grew |= !dedup.is_empty();
            delta.insert(p.clone(), dedup);
        }
        if !grew {
            break;
        }
        iterations += 1;
        if iterations > 1_000_000 {
            return Err(Error::Parse("datalog fixpoint did not converge".into()));
        }
        let mut sp = mjoin_trace::span("datalog", "iteration");
        refresh(&mut work, &facts, &delta, &arities)?;

        // Semi-naive round: one rewrite per recursive body atom.
        let mut rules_fired = 0usize;
        new_delta = FxHashMap::default();
        for rule in rules {
            for (i, atom) in rule.body.iter().enumerate() {
                if !arities.contains_key(&atom.predicate) {
                    continue; // EDB atom: not a recursion entry point
                }
                if delta[&atom.predicate].is_empty() {
                    continue;
                }
                let mut rewritten = rule.clone();
                rewritten.body[i].predicate = delta_name(&atom.predicate);
                let res = execute_query(&work, &rewritten, strategy)?;
                rules_fired += 1;
                total_cost += res.ledger.total();
                for row in res.rows_in_head_order() {
                    let row: Row = row.into();
                    if !facts[&rule.head_name].contains(&row) {
                        new_delta
                            .entry(rule.head_name.clone())
                            .or_default()
                            .push(row);
                    }
                }
            }
        }
        if sp.is_active() {
            sp.arg("iteration", iterations);
            sp.arg("rules_fired", rules_fired);
            sp.arg("delta_rows", delta.values().map(Vec::len).sum::<usize>());
            sp.arg("new_rows", new_delta.values().map(Vec::len).sum::<usize>());
        }
    }

    let mut out: FxHashMap<String, Vec<Vec<Value>>> = FxHashMap::default();
    for (p, rows) in facts {
        let mut v: Vec<Vec<Value>> = rows.into_iter().map(|r| r.to_vec()).collect();
        v.sort_unstable();
        out.insert(p, v);
    }
    if fix_sp.is_active() {
        fix_sp.arg("iterations", iterations);
        fix_sp.arg("total_cost", total_cost);
        fix_sp.arg("facts", out.values().map(Vec::len).sum::<usize>());
    }
    Ok(DatalogResult {
        facts: out,
        iterations,
        total_cost,
    })
}

/// Parse a multi-rule program: one rule per `.`-terminated statement.
pub fn parse_rules(text: &str) -> Result<Vec<ConjunctiveQuery>> {
    let mut rules = Vec::new();
    for chunk in text.split('.') {
        let chunk = chunk.trim();
        if chunk.is_empty() || chunk.starts_with('%') {
            continue;
        }
        rules.push(crate::parse::parse_query(chunk)?);
    }
    if rules.is_empty() {
        return Err(Error::Parse("no rules in program".into()));
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_edb(n: i64) -> NamedDatabase {
        let mut db = NamedDatabase::new();
        let edges: Vec<Vec<i64>> = (0..n - 1).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[i64]> = edges.iter().map(std::vec::Vec::as_slice).collect();
        db.add_relation("e", &["s", "d"], &refs).unwrap();
        db
    }

    fn ints(rows: &[Vec<Value>]) -> Vec<(i64, i64)> {
        rows.iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect()
    }

    #[test]
    fn transitive_closure_on_chain() {
        let db = chain_edb(6); // 0→1→2→3→4→5
        let rules = parse_rules("t(x, y) :- e(x, y). t(x, z) :- t(x, y), e(y, z).").unwrap();
        let res = evaluate_datalog(&db, &rules, PlanStrategy::Greedy).unwrap();
        // Closure of a 6-node chain: C(6,2) = 15 pairs.
        assert_eq!(res.facts_of("t").len(), 15);
        let pairs = ints(res.facts_of("t"));
        assert!(pairs.contains(&(0, 5)));
        assert!(!pairs.contains(&(5, 0)));
        // Semi-naive on a chain of length 5 needs ~5 iterations, not 15.
        assert!(res.iterations <= 6, "iterations = {}", res.iterations);
        assert!(res.total_cost > 0);
    }

    #[test]
    fn transitive_closure_on_cycle_saturates() {
        let mut db = NamedDatabase::new();
        db.add_relation("e", &["s", "d"], &[&[0, 1], &[1, 2], &[2, 0]])
            .unwrap();
        let rules = parse_rules("t(x, y) :- e(x, y). t(x, z) :- t(x, y), e(y, z).").unwrap();
        let res = evaluate_datalog(&db, &rules, PlanStrategy::Greedy).unwrap();
        // Strongly connected 3-cycle: all 9 pairs.
        assert_eq!(res.facts_of("t").len(), 9);
    }

    #[test]
    fn right_linear_equivalent() {
        let db = chain_edb(5);
        let left = parse_rules("t(x, y) :- e(x, y). t(x, z) :- t(x, y), e(y, z).").unwrap();
        let right = parse_rules("t(x, y) :- e(x, y). t(x, z) :- e(x, y), t(y, z).").unwrap();
        let a = evaluate_datalog(&db, &left, PlanStrategy::Greedy).unwrap();
        let b = evaluate_datalog(&db, &right, PlanStrategy::Greedy).unwrap();
        assert_eq!(a.facts_of("t"), b.facts_of("t"));
    }

    #[test]
    fn same_generation() {
        // parent(p, c); sg(x, y) if x and y are at the same depth below a
        // common ancestor structure.
        let mut db = NamedDatabase::new();
        db.add_relation("parent", &["p", "c"], &[&[0, 1], &[0, 2], &[1, 3], &[2, 4]])
            .unwrap();
        let rules = parse_rules(
            "sg(x, y) :- parent(p, x), parent(p, y). \
             sg(x, y) :- parent(px, x), sg(px, py), parent(py, y).",
        )
        .unwrap();
        let res = evaluate_datalog(&db, &rules, PlanStrategy::Greedy).unwrap();
        let pairs = ints(res.facts_of("sg"));
        assert!(pairs.contains(&(1, 2)));
        assert!(pairs.contains(&(3, 4)));
        assert!(pairs.contains(&(3, 3)));
        assert!(!pairs.contains(&(1, 3)));
    }

    #[test]
    fn mutual_recursion_even_odd_paths() {
        let db = chain_edb(6);
        let rules = parse_rules(
            "odd(x, y) :- e(x, y). \
             odd(x, z) :- even(x, y), e(y, z). \
             even(x, z) :- odd(x, y), e(y, z).",
        )
        .unwrap();
        let res = evaluate_datalog(&db, &rules, PlanStrategy::Greedy).unwrap();
        let odd = ints(res.facts_of("odd"));
        let even = ints(res.facts_of("even"));
        assert!(odd.contains(&(0, 1)));
        assert!(odd.contains(&(0, 3)));
        assert!(odd.contains(&(0, 5)));
        assert!(even.contains(&(0, 2)));
        assert!(even.contains(&(0, 4)));
        assert!(!odd.contains(&(0, 2)));
        assert!(!even.contains(&(0, 3)));
    }

    #[test]
    fn nonrecursive_program_is_one_round() {
        let db = chain_edb(4);
        let rules = parse_rules("q(x, z) :- e(x, y), e(y, z).").unwrap();
        let res = evaluate_datalog(&db, &rules, PlanStrategy::DpOptimal).unwrap();
        assert_eq!(res.facts_of("q").len(), 2);
        assert_eq!(res.iterations, 1, "seed facts fold in, then fixpoint");
    }

    #[test]
    fn strategies_agree_on_closure() {
        let db = chain_edb(6);
        let rules = parse_rules("t(x, y) :- e(x, y). t(x, z) :- t(x, y), e(y, z).").unwrap();
        let a = evaluate_datalog(&db, &rules, PlanStrategy::Greedy).unwrap();
        let b = evaluate_datalog(&db, &rules, PlanStrategy::DpOptimal).unwrap();
        assert_eq!(a.facts_of("t"), b.facts_of("t"));
    }

    #[test]
    fn errors() {
        let db = chain_edb(3);
        // Head collides with EDB.
        let r = parse_rules("e(x, y) :- e(y, x).").unwrap();
        assert!(evaluate_datalog(&db, &r, PlanStrategy::Greedy).is_err());
        // Inconsistent arity.
        let r = parse_rules("t(x, y) :- e(x, y). t(x) :- e(x, x).").unwrap();
        assert!(evaluate_datalog(&db, &r, PlanStrategy::Greedy).is_err());
        // Unknown body predicate.
        let r = parse_rules("t(x, y) :- nope(x, y).").unwrap();
        assert!(evaluate_datalog(&db, &r, PlanStrategy::Greedy).is_err());
        // Empty program.
        assert!(parse_rules("  ").is_err());
    }

    #[test]
    fn constants_in_recursive_rules() {
        let db = chain_edb(6);
        // Reachability from node 0 only.
        let rules = parse_rules("r(y) :- e(0, y). r(z) :- r(y), e(y, z).").unwrap();
        let res = evaluate_datalog(&db, &rules, PlanStrategy::Greedy).unwrap();
        let vals: Vec<i64> = res
            .facts_of("r")
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5]);
    }
}
