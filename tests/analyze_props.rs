//! Property: every program the paper's pipeline generates is lint-clean.
//!
//! The analyzer's passes encode the invariants Algorithms 1 and 2
//! guarantee (no Cartesian joins, no dead stores, no recomputation, Claim
//! C's bound, a race-free schedule), so any error or warning on a derived
//! program — before or after dead-code elimination, for any choice policy
//! — is a pipeline bug. Runs 48 cases per property over the named scheme
//! families.

use mjoin::optimizer::random_tree;
use mjoin::prelude::*;
use mjoin::program::eliminate_dead_code;
use mjoin::workloads::schemes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A connected scheme drawn from the named families (so shrinking lands on
/// readable cases). Mirrors `pipeline_props.rs`.
fn any_scheme() -> impl Strategy<Value = (Catalog, DbScheme)> {
    (0usize..5, 3usize..6).prop_map(|(family, n)| {
        let mut c = Catalog::new();
        let s = match family {
            0 => schemes::chain(&mut c, n),
            1 => schemes::cycle(&mut c, n),
            2 => schemes::star(&mut c, n - 1),
            3 => schemes::clique(&mut c, 3),
            _ => schemes::random_connected(&mut c, n, n + 2, 3, n as u64 * 31),
        };
        (c, s)
    })
}

/// No errors, no warnings; the only tolerated note is the identity
/// self-projection Algorithm 2's Steps 10/12 faithfully emit.
fn assert_clean(report: &Report, what: &str) -> Result<(), String> {
    prop_assert!(
        report.is_clean(),
        "{what} must be free of errors and warnings, got:\n{}",
        report.render_text()
    );
    for d in &report.diagnostics {
        prop_assert_eq!(d.lint, "noop-project", "{}", report.render_text());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_are_lint_clean(
        (catalog, scheme) in any_scheme(),
        tree_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let mut policy = SeededChoice::new(policy_seed);
        let program = derive_with_policy(&scheme, &t1, &mut policy).unwrap().program;
        assert_clean(&analyze(&program, &scheme, &catalog), "derived program")?;

        // Dead-code elimination must not disturb cleanliness (and the
        // derived program has no dead code for it to remove).
        let optimized = eliminate_dead_code(&program);
        prop_assert_eq!(optimized.stmts.len(), program.stmts.len());
        assert_clean(&analyze(&optimized, &scheme, &catalog), "optimized program")?;
    }

    #[test]
    fn optimizer_chosen_trees_derive_clean_programs(
        (catalog, scheme) in any_scheme(),
        db_seed in any::<u64>(),
    ) {
        let db = random_database(
            &scheme,
            &DataGenConfig {
                tuples_per_relation: 20,
                domain: 4,
                seed: db_seed,
                plant_witness: true,
            },
        );
        let mut oracle = ExactOracle::new(&db);
        let (t1, _) = greedy(&scheme, &mut oracle, true);
        let program = derive(&scheme, &t1).unwrap().program;
        assert_clean(&analyze(&program, &scheme, &catalog), "greedy-tree program")?;
    }
}
