//! Property tests for the conjunctive-query front end: the pipeline-backed
//! executor must agree with the naive fold-join reference on random graph
//! databases and a family of query shapes, under every plan strategy.

use mjoin::cq::{execute_query, execute_query_naive, parse_query, NamedDatabase, PlanStrategy};
use mjoin::relation::ops;
use proptest::prelude::*;

/// Random edge relation + unary label relation.
fn db_strategy() -> impl Strategy<Value = NamedDatabase> {
    (
        prop::collection::vec((0i64..8, 0i64..8), 1..40),
        prop::collection::vec((0i64..8, 0i64..3), 1..12),
    )
        .prop_map(|(edges, labels)| {
            let mut db = NamedDatabase::new();
            let erefs: Vec<Vec<i64>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
            let eslice: Vec<&[i64]> = erefs.iter().map(std::vec::Vec::as_slice).collect();
            db.add_relation("e", &["s", "d"], &eslice).unwrap();
            let lrefs: Vec<Vec<i64>> = labels.iter().map(|&(n, t)| vec![n, t]).collect();
            let lslice: Vec<&[i64]> = lrefs.iter().map(std::vec::Vec::as_slice).collect();
            db.add_relation("l", &["n", "t"], &lslice).unwrap();
            db
        })
}

const QUERIES: &[&str] = &[
    "Q(x, z) :- e(x, y), e(y, z).",
    "Q(x) :- e(x, x).",
    "Q(x, y, z) :- e(x, y), e(y, z), e(z, x).",
    "Q(a, d) :- e(a, b), e(b, c), e(c, d).",
    "Q(x, t) :- e(x, y), l(y, t).",
    "Q(x) :- e(x, y), l(y, 1).",
    "Q() :- e(x, y), l(x, 0), l(y, 1).",
    "Q(x, w) :- e(x, y), e(z, w), l(y, 0), l(z, 0).",
    "Q(a, c) :- e(a, b), e(b, c), e(a, c).",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn pipeline_matches_naive_reference(
        db in db_strategy(),
        qidx in 0usize..QUERIES.len(),
    ) {
        let q = parse_query(QUERIES[qidx]).unwrap();
        let expected = execute_query_naive(&db, &q).unwrap();
        for strategy in [PlanStrategy::Greedy, PlanStrategy::DpOptimal, PlanStrategy::DpCpf] {
            let res = execute_query(&db, &q, strategy).unwrap();
            prop_assert_eq!(
                &res.relation, &expected,
                "query {} under {:?}", QUERIES[qidx], strategy
            );
        }
    }

    #[test]
    fn result_schema_is_head_schema(
        db in db_strategy(),
        qidx in 0usize..QUERIES.len(),
    ) {
        let q = parse_query(QUERIES[qidx]).unwrap();
        let res = execute_query(&db, &q, PlanStrategy::Greedy).unwrap();
        prop_assert_eq!(res.relation.schema().arity(), {
            let mut vars = q.head_vars.clone();
            vars.sort();
            vars.dedup();
            vars.len()
        });
        // rows_in_head_order yields |head| columns.
        for row in res.rows_in_head_order() {
            prop_assert_eq!(row.len(), q.head_vars.len());
        }
    }

    #[test]
    fn answers_are_sound(db in db_strategy()) {
        // Every reported 2-hop answer must be witnessed by actual edges.
        let q = parse_query("Q(x, z) :- e(x, y), e(y, z).").unwrap();
        let res = execute_query(&db, &q, PlanStrategy::Greedy).unwrap();
        let edges = db.get("e").unwrap();
        let spos = edges.canonical_position(0);
        let dpos = edges.canonical_position(1);
        for row in res.rows_in_head_order() {
            let witnessed = edges.relation.rows().iter().any(|e1| {
                e1[spos] == row[0]
                    && edges
                        .relation
                        .rows()
                        .iter()
                        .any(|e2| e2[spos] == e1[dpos] && e2[dpos] == row[1])
            });
            prop_assert!(witnessed, "unsound answer {row:?}");
        }
        let _ = ops::join; // keep the ops import meaningful under cfg changes
    }
}
