//! Property test: TSV export → import is the identity on relations, even
//! when string values contain the TSV metacharacters themselves (tabs,
//! newlines, backslashes) or shapes the importer would otherwise coerce
//! (leading zeros, surrounding whitespace, integer-looking digits).
//!
//! This pins the escaping contract of `mjoin_relation::tsv`: any `Relation`
//! a program can build must survive a round trip through the text format.

use mjoin::relation::tsv::{relation_from_tsv, relation_to_tsv};
use mjoin::relation::{Catalog, Relation, Row, Schema, Value};
use proptest::prelude::*;

/// Alphabet biased towards the characters the TSV escaping logic cares
/// about: separators, escapes, digits (integer sniffing), and whitespace
/// (trim sniffing), plus a few ordinary letters.
const ALPHABET: &[char] = &[
    '\t', '\n', '\r', '\\', 's', 't', '0', '1', '7', '-', ' ', 'a', 'Z', '.',
];

fn string_value() -> impl Strategy<Value = String> {
    prop::collection::vec(0..ALPHABET.len(), 0..10)
        .prop_map(|idx| idx.into_iter().map(|i| ALPHABET[i]).collect())
}

/// Either an integer or a hostile string, as a cell value.
fn cell() -> impl Strategy<Value = Value> {
    (0..4usize, -100..100i64, string_value()).prop_map(|(kind, n, s)| {
        if kind == 0 {
            Value::Int(n)
        } else {
            Value::str(s)
        }
    })
}

fn relation(catalog: &mut Catalog, rows: Vec<Vec<Value>>) -> Relation {
    let a = catalog.intern("A");
    let b = catalog.intern("B");
    let rows: Vec<Row> = rows.into_iter().map(Row::from).collect();
    Relation::from_rows(Schema::new(vec![a, b]), rows).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tsv_round_trip_is_identity(
        rows in prop::collection::vec(prop::collection::vec(cell(), 2), 0..12)
    ) {
        let mut catalog = Catalog::new();
        let original = relation(&mut catalog, rows);
        let text = relation_to_tsv(&catalog, &original);

        // The wire format itself stays line/tab structured: one header plus
        // one physical line per tuple, each with exactly one separator tab.
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), original.len() + 1, "text:\n{}", text);
        for line in &lines {
            prop_assert_eq!(
                line.matches('\t').count(), 1,
                "cell bytes leaked into the framing: {:?}", line
            );
        }

        let back = relation_from_tsv(&mut catalog, &text).unwrap();
        prop_assert_eq!(back, original);
    }

    /// Network clients re-frame the same records with CRLF endings and may
    /// omit the final newline; neither transformation of the *framing* may
    /// change the parsed relation (values containing \r or \n travel
    /// escaped, so only real line endings are rewritten here).
    #[test]
    fn tsv_round_trip_survives_crlf_and_unterminated_tail(
        rows in prop::collection::vec(prop::collection::vec(cell(), 2), 0..12),
        crlf in any::<bool>(),
        drop_final_newline in any::<bool>(),
    ) {
        let mut catalog = Catalog::new();
        let original = relation(&mut catalog, rows);
        let mut text = relation_to_tsv(&catalog, &original);
        if crlf {
            text = text.replace('\n', "\r\n");
        }
        if drop_final_newline {
            // Strip the terminator of the last physical line ("\n" or
            // "\r\n" → nothing; keep the possible "\r" when only the \n is
            // conceptually dropped by a truncating writer).
            if text.ends_with('\n') {
                text.pop();
            }
        }
        let back = relation_from_tsv(&mut catalog, &text).unwrap();
        prop_assert_eq!(back, original);
    }

    #[test]
    fn tsv_round_trip_preserves_integer_typing(n in -1000..1000i64) {
        // An Int exports as plain digits and re-imports as an Int, while the
        // *string* of those same digits re-imports as a Str (via the marker).
        let mut catalog = Catalog::new();
        let as_int = relation(&mut catalog, vec![vec![Value::Int(n), Value::Int(0)]]);
        let as_str = relation(
            &mut catalog,
            vec![vec![Value::str(n.to_string()), Value::Int(0)]],
        );
        let int_text = relation_to_tsv(&catalog, &as_int);
        let str_text = relation_to_tsv(&catalog, &as_str);
        let int_back = relation_from_tsv(&mut catalog, &int_text).unwrap();
        let str_back = relation_from_tsv(&mut catalog, &str_text).unwrap();
        prop_assert_eq!(int_back, as_int);
        prop_assert_eq!(str_back, as_str);
    }
}
