//! Property-based tests of the paper's pipeline: Theorems 1 and 2 as
//! executable properties over random schemes, databases, trees, and
//! Algorithm 1 choice policies.

use mjoin::optimizer::random_tree;
use mjoin::prelude::*;
use mjoin::workloads::schemes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A connected scheme drawn from the named families (so shrinking lands on
/// readable cases).
fn any_scheme() -> impl Strategy<Value = (Catalog, DbScheme)> {
    (0usize..5, 3usize..6).prop_map(|(family, n)| {
        let mut c = Catalog::new();
        let s = match family {
            0 => schemes::chain(&mut c, n),
            1 => schemes::cycle(&mut c, n),
            2 => schemes::star(&mut c, n - 1),
            3 => schemes::clique(&mut c, 3),
            _ => schemes::random_connected(&mut c, n, n + 2, 3, n as u64 * 31),
        };
        (c, s)
    })
}

fn db_for(scheme: &DbScheme, seed: u64) -> Database {
    random_database(
        scheme,
        &DataGenConfig {
            tuples_per_relation: 20,
            domain: 4,
            seed,
            plant_witness: true,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algorithm1_output_is_cpf_for_any_policy(
        (..) in Just(()),
        (catalog, scheme) in any_scheme(),
        tree_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let _ = catalog;
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let mut policy = SeededChoice::new(policy_seed);
        let t2 = algorithm1_with_policy(&scheme, &t1, &mut policy).unwrap();
        prop_assert!(t2.is_cpf(&scheme));
        prop_assert!(t2.is_exactly_over(&scheme));
    }

    #[test]
    fn theorem1_program_computes_the_join(
        (catalog, scheme) in any_scheme(),
        db_seed in any::<u64>(),
        tree_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let _ = catalog;
        let db = db_for(&scheme, db_seed);
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let mut policy = SeededChoice::new(policy_seed);
        let run = run_pipeline(&scheme, &t1, &db, &mut policy).unwrap();
        prop_assert_eq!(&*run.exec.result, &db.join_all());
    }

    #[test]
    fn theorem2_bound_never_violated(
        (catalog, scheme) in any_scheme(),
        db_seed in any::<u64>(),
        tree_seed in any::<u64>(),
        policy_seed in any::<u64>(),
    ) {
        let _ = catalog;
        let db = db_for(&scheme, db_seed);
        prop_assume!(!db.join_all().is_empty()); // theorem hypothesis
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let mut policy = SeededChoice::new(policy_seed);
        let report = check_theorem2(&scheme, &t1, &db, &mut policy).unwrap();
        prop_assert!(
            report.holds,
            "cost(P)={} vs bound {}·{}",
            report.program_cost, report.quasi_factor, report.tree_cost
        );
        prop_assert!((report.num_statements as u64) < report.quasi_factor);
    }

    #[test]
    fn derived_programs_validate_statically(
        (catalog, scheme) in any_scheme(),
        tree_seed in any::<u64>(),
    ) {
        let _ = catalog;
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let d = derive(&scheme, &t1).unwrap();
        let info = validate(&d.program, &scheme).unwrap();
        prop_assert_eq!(info.result_scheme, scheme.all_attrs());
    }

    #[test]
    fn dp_spaces_are_ordered(
        (catalog, scheme) in any_scheme(),
        db_seed in any::<u64>(),
    ) {
        let _ = catalog;
        let db = db_for(&scheme, db_seed);
        let mut oracle = ExactOracle::new(&db);
        let all = optimize(&scheme, &mut oracle, SearchSpace::All).unwrap().cost;
        let cpf = optimize(&scheme, &mut oracle, SearchSpace::Cpf).unwrap().cost;
        let lin = optimize(&scheme, &mut oracle, SearchSpace::Linear).unwrap().cost;
        prop_assert!(all <= cpf);
        prop_assert!(all <= lin);
        // Heuristics can't beat the DP optimum.
        let (gt, gc) = greedy(&scheme, &mut oracle, true);
        prop_assert!(gc >= all);
        prop_assert_eq!(gc, cost_of(&gt, &db));
    }

    #[test]
    fn tree_eval_matches_restricted_naive_join(
        (catalog, scheme) in any_scheme(),
        db_seed in any::<u64>(),
        tree_seed in any::<u64>(),
    ) {
        let _ = catalog;
        let db = db_for(&scheme, db_seed);
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t = random_tree(&scheme, &mut rng, false);
        let res = evaluate(&t, &db);
        prop_assert_eq!(res.relation, db.join_all());
    }
}
