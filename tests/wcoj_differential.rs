//! Differential suite for the executor triad: the worst-case-optimal
//! backend, the sequential program interpreter, and the parallel program
//! interpreter (1/2/4/8 threads) must agree tuple-for-tuple on cyclic,
//! acyclic, empty, and skewed inputs — with the naive fold-join as the
//! reference — and `auto`'s reported bounds must always justify its pick:
//! the selected executor is never the one whose stated bound is larger.

use mjoin::cq::{
    execute_query_naive, execute_query_with, parse_query, ComponentDecision, ExecOptions,
    ExecutorKind, NamedDatabase, PlanStrategy,
};
use mjoin::relation::Relation;
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const EXECUTORS: [ExecutorKind; 3] = [
    ExecutorKind::Program,
    ExecutorKind::Wcoj,
    ExecutorKind::Auto,
];

fn run(
    db: &NamedDatabase,
    query: &str,
    executor: ExecutorKind,
    threads: usize,
) -> (Relation, Vec<ComponentDecision>) {
    let q = parse_query(query).unwrap();
    let opts = ExecOptions {
        executor,
        threads,
        cache: None,
        minimize: false,
        mem_budget: None,
    };
    let (res, decisions) = execute_query_with(db, &q, PlanStrategy::Greedy, &opts).unwrap();
    (res.relation, decisions)
}

/// Every executor × thread-count combination must reproduce the naive
/// fold-join reference exactly.
fn assert_all_agree(db: &NamedDatabase, query: &str) {
    let q = parse_query(query).unwrap();
    let expected = execute_query_naive(db, &q).unwrap();
    for executor in EXECUTORS {
        for threads in THREADS {
            let (got, _) = run(db, query, executor, threads);
            assert_eq!(
                got,
                expected,
                "{query} diverged under {} at {threads} threads",
                executor.name()
            );
        }
    }
}

/// Hub-patterned triangle over named relations: `(0, v)` and `(u, 0)` rows
/// make every pairwise join quadratic while the cyclic output stays linear
/// — maximal skew, the WCOJ backend's home terrain.
fn hub_triangle(m: i64) -> NamedDatabase {
    let mut rows: Vec<Vec<i64>> = Vec::new();
    for v in 0..=m {
        rows.push(vec![0, v]);
    }
    for u in 1..=m {
        rows.push(vec![u, 0]);
    }
    let slices: Vec<&[i64]> = rows.iter().map(std::vec::Vec::as_slice).collect();
    let mut db = NamedDatabase::new();
    db.add_relation("r", &["a", "b"], &slices).unwrap();
    db.add_relation("s", &["b", "c"], &slices).unwrap();
    db.add_relation("t", &["c", "a"], &slices).unwrap();
    db
}

const TRIANGLE: &str = "Q(x, y, z) :- r(x, y), s(y, z), t(z, x).";

#[test]
fn executors_agree_on_the_skewed_cyclic_triangle() {
    assert_all_agree(&hub_triangle(25), TRIANGLE);
}

#[test]
fn executors_agree_on_an_acyclic_chain() {
    let mut db = NamedDatabase::new();
    db.add_relation("r", &["a", "b"], &[&[1, 10], &[2, 10], &[3, 11], &[3, 12]])
        .unwrap();
    db.add_relation("s", &["b", "c"], &[&[10, 20], &[11, 21], &[12, 22]])
        .unwrap();
    db.add_relation("t", &["c", "d"], &[&[20, 5], &[21, 5], &[22, 6]])
        .unwrap();
    assert_all_agree(&db, "Q(a, d) :- r(a, b), s(b, c), t(c, d).");
}

#[test]
fn executors_agree_when_one_relation_is_empty() {
    let mut db = hub_triangle(10);
    db.add_relation("z", &["b", "c"], &[]).unwrap();
    // The empty atom annihilates the whole (connected) join.
    assert_all_agree(&db, "Q(x, y, z) :- r(x, y), z(y, z), t(z, x).");
}

#[test]
fn executors_agree_across_disconnected_components() {
    let mut db = hub_triangle(8);
    db.add_relation("u", &["p", "q"], &[&[1, 2], &[3, 4]])
        .unwrap();
    // Two components: the cyclic triangle and an independent edge — the
    // per-component decisions may differ, the cross product must not.
    assert_all_agree(&db, "Q(x, p) :- r(x, y), s(y, z), t(z, x), u(p, q).");
}

#[test]
fn auto_routes_the_triangle_to_wcoj_with_justifying_bounds() {
    let db = hub_triangle(25);
    let (_, decisions) = run(&db, TRIANGLE, ExecutorKind::Auto, 1);
    assert_eq!(decisions.len(), 1);
    let d = &decisions[0];
    assert_eq!(d.executor, ExecutorKind::Wcoj);
    let (agm, cert) = (d.agm_bound.unwrap(), d.cert_bound.unwrap());
    assert!(
        agm < cert,
        "wcoj selected but AGM {agm} does not undercut certificate {cert}"
    );
}

#[test]
fn auto_keeps_the_program_engine_on_a_tie() {
    let mut db = NamedDatabase::new();
    db.add_relation("r", &["a", "b"], &[&[1, 2], &[2, 2]])
        .unwrap();
    db.add_relation("s", &["b", "c"], &[&[2, 3], &[2, 4]])
        .unwrap();
    // A single binary join: the final statement's certificate IS the AGM
    // bound of the whole component, so the bounds tie and the tie keeps
    // the program engine.
    let (_, decisions) = run(&db, "Q(a, c) :- r(a, b), s(b, c).", ExecutorKind::Auto, 1);
    assert_eq!(decisions.len(), 1);
    let d = &decisions[0];
    assert_eq!(d.executor, ExecutorKind::Program);
    assert_eq!(d.agm_bound, d.cert_bound);
}

/// `auto` may only pick an executor whose stated bound is the smaller
/// side: WCOJ needs a strict AGM win, the program engine keeps ties.
fn assert_decisions_justified(decisions: &[ComponentDecision], ctx: &str) {
    for d in decisions {
        let (Some(agm), Some(cert)) = (d.agm_bound, d.cert_bound) else {
            continue;
        };
        match d.executor {
            ExecutorKind::Wcoj => assert!(
                agm < cert,
                "{ctx}: component {} ran wcoj with AGM {agm} >= certificate {cert}",
                d.component
            ),
            ExecutorKind::Program => assert!(
                agm >= cert,
                "{ctx}: component {} kept the program with AGM {agm} < certificate {cert}",
                d.component
            ),
            ExecutorKind::Auto => panic!("{ctx}: a decision must name a concrete executor"),
        }
    }
}

/// Random edge + label relations, as in the cq property suite.
fn db_strategy() -> impl Strategy<Value = NamedDatabase> {
    (
        prop::collection::vec((0i64..8, 0i64..8), 1..40),
        prop::collection::vec((0i64..8, 0i64..3), 1..12),
    )
        .prop_map(|(edges, labels)| {
            let mut db = NamedDatabase::new();
            let erefs: Vec<Vec<i64>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
            let eslice: Vec<&[i64]> = erefs.iter().map(std::vec::Vec::as_slice).collect();
            db.add_relation("e", &["s", "d"], &eslice).unwrap();
            let lrefs: Vec<Vec<i64>> = labels.iter().map(|&(n, t)| vec![n, t]).collect();
            let lslice: Vec<&[i64]> = lrefs.iter().map(std::vec::Vec::as_slice).collect();
            db.add_relation("l", &["n", "t"], &lslice).unwrap();
            db
        })
}

const QUERIES: &[&str] = &[
    "Q(x, z) :- e(x, y), e(y, z).",
    "Q(x, y, z) :- e(x, y), e(y, z), e(z, x).",
    "Q(a, b, c, d) :- e(a, b), e(b, c), e(c, d), e(d, a).",
    "Q(a, d) :- e(a, b), e(b, c), e(c, d).",
    "Q(x, t) :- e(x, y), l(y, t).",
    "Q(x) :- e(x, y), l(y, 1).",
    "Q(x, w) :- e(x, y), e(z, w), l(y, 0), l(z, 0).",
    "Q(a, c) :- e(a, b), e(b, c), e(a, c).",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_executors_match_the_naive_reference(
        db in db_strategy(),
        qidx in 0usize..QUERIES.len(),
    ) {
        let q = parse_query(QUERIES[qidx]).unwrap();
        let expected = execute_query_naive(&db, &q).unwrap();
        for executor in EXECUTORS {
            for threads in [1usize, 4] {
                let (got, _) = run(&db, QUERIES[qidx], executor, threads);
                prop_assert_eq!(
                    &got, &expected,
                    "query {} under {} at {} threads",
                    QUERIES[qidx], executor.name(), threads
                );
            }
        }
    }

    #[test]
    fn auto_never_selects_the_larger_bound(
        db in db_strategy(),
        qidx in 0usize..QUERIES.len(),
    ) {
        let (_, decisions) = run(&db, QUERIES[qidx], ExecutorKind::Auto, 1);
        assert_decisions_justified(&decisions, QUERIES[qidx]);
    }
}
