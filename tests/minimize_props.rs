//! Property tests for Chandra–Merlin core minimization: the rewrite the
//! compiler applies must be invisible in the answers (under every executor
//! and thread count), idempotent, and monotone in the static bounds —
//! minimizing never makes the AGM bound or the Theorem-2 certificate worse.

use mjoin::cq::query_agm_bound;
use mjoin::prelude::*;
use proptest::prelude::*;

/// Random edge relation + unary label relation (the `cq_props` generator).
fn db_strategy() -> impl Strategy<Value = NamedDatabase> {
    (
        prop::collection::vec((0i64..8, 0i64..8), 1..40),
        prop::collection::vec((0i64..8, 0i64..3), 1..12),
    )
        .prop_map(|(edges, labels)| {
            let mut db = NamedDatabase::new();
            let erefs: Vec<Vec<i64>> = edges.iter().map(|&(a, b)| vec![a, b]).collect();
            let eslice: Vec<&[i64]> = erefs.iter().map(std::vec::Vec::as_slice).collect();
            db.add_relation("e", &["s", "d"], &eslice).unwrap();
            let lrefs: Vec<Vec<i64>> = labels.iter().map(|&(n, t)| vec![n, t]).collect();
            let lslice: Vec<&[i64]> = lrefs.iter().map(std::vec::Vec::as_slice).collect();
            db.add_relation("l", &["n", "t"], &lslice).unwrap();
            db
        })
}

/// Queries with and without foldable atoms: planted redundancy, verbatim
/// duplicates, dominated atoms, Boolean bodies, and cores that must not
/// shrink.
const QUERIES: &[&str] = &[
    "Q(x, z) :- e(x, y), e(y, z), e(x, d).",
    "Q(x, z) :- e(x, y), e(y, z), e(x, y).",
    "Q(x) :- e(x, y), e(x, z).",
    "Q(x, t) :- e(x, y), l(y, t), e(x, d).",
    "Q(a, c) :- e(a, b), e(b, c), e(a, c).",
    "Q() :- e(x, y), e(u, v).",
    "Q(x, z) :- e(x, y), e(y, z).",
    "Q(x, y, z) :- e(x, y), e(y, z), e(z, x).",
    "Q(x) :- e(x, x).",
];

fn dump(db: &NamedDatabase) -> String {
    let mut s = String::new();
    for name in ["e", "l"] {
        let rel = &db.get(name).unwrap().relation;
        s.push_str(&format!("{name}: {:?} ", rel.rows()));
    }
    s
}

fn opts(minimize: bool, threads: usize, executor: ExecutorKind) -> ExecOptions {
    ExecOptions {
        executor,
        threads,
        minimize,
        ..Default::default()
    }
}

/// Largest certificate across component decisions (0 when the forced
/// executor never computed one).
fn cert_of(decisions: &[ComponentDecision]) -> u64 {
    decisions
        .iter()
        .filter_map(|d| d.cert_bound)
        .max()
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The defining property: compiling the core instead of the literal
    /// body changes nothing observable, whichever executor runs it and
    /// however many threads it runs on.
    #[test]
    fn minimize_is_invisible_in_the_answers(
        db in db_strategy(),
        qidx in 0usize..QUERIES.len(),
    ) {
        let q = parse_query(QUERIES[qidx]).unwrap();
        let (baseline, _) =
            execute_query_with(&db, &q, PlanStrategy::Greedy, &opts(false, 0, ExecutorKind::Program))
                .unwrap();
        // Attribute ids are per-compilation artifacts (dropping an atom
        // renumbers them), so runs are compared by head-ordered rows, not
        // by `Relation` equality.
        let mut expected = baseline.rows_in_head_order();
        expected.sort();
        for threads in [1usize, 2, 4, 8] {
            for executor in [ExecutorKind::Program, ExecutorKind::Auto] {
                let (res, _) =
                    execute_query_with(&db, &q, PlanStrategy::Greedy, &opts(true, threads, executor))
                        .unwrap();
                let mut rows = res.rows_in_head_order();
                rows.sort();
                prop_assert_eq!(
                    &rows, &expected,
                    "query {} diverged under minimize at {} threads ({:?}); db {}",
                    QUERIES[qidx], threads, executor, dump(&db)
                );
            }
        }
    }

    /// A core is a fixpoint: minimizing it again drops nothing.
    #[test]
    fn minimization_is_idempotent(qidx in 0usize..QUERIES.len()) {
        let q = parse_query(QUERIES[qidx]).unwrap();
        let first = minimize(&q);
        prop_assert!(first.proof.verified, "query {}", QUERIES[qidx]);
        let second = minimize(&first.core);
        prop_assert!(second.proof.dropped.is_empty(),
            "re-minimizing the core of {} dropped atoms", QUERIES[qidx]);
        prop_assert_eq!(&second.core, &first.core);
    }

    /// Static bounds are monotone under minimization: the core's AGM bound
    /// and the auto selector's certificate never exceed the literal body's.
    #[test]
    fn bounds_never_increase(
        db in db_strategy(),
        qidx in 0usize..QUERIES.len(),
    ) {
        let q = parse_query(QUERIES[qidx]).unwrap();
        let core = minimize(&q).core;
        prop_assert!(
            query_agm_bound(&db, &core.body) <= query_agm_bound(&db, &q.body),
            "AGM bound grew for {}", QUERIES[qidx]
        );
        let (_, dec_off) =
            execute_query_with(&db, &q, PlanStrategy::Greedy, &opts(false, 0, ExecutorKind::Auto))
                .unwrap();
        let (_, dec_on) =
            execute_query_with(&db, &q, PlanStrategy::Greedy, &opts(true, 0, ExecutorKind::Auto))
                .unwrap();
        prop_assert!(cert_of(&dec_on) <= cert_of(&dec_off),
            "certificate grew for {}", QUERIES[qidx]);
    }
}

/// Exhaustive planted-redundancy corpus: every (chain, planted) pair folds
/// to its known core under a two-way verified proof, and all three
/// executors agree with the closed-form output both with and without
/// minimization.
#[test]
fn planted_corpus_folds_and_executes_to_closed_form() {
    for chain_len in 1..=4usize {
        for planted in 0..=3usize {
            let w = PlantedRedundancy::new(chain_len, planted, 11, 2);
            let q = w.query();
            let m = minimize(&q);
            assert!(
                m.proof.verified,
                "n={chain_len} k={planted}: unverified proof"
            );
            assert_eq!(
                m.core.body.len(),
                w.core_size(),
                "n={chain_len} k={planted}"
            );
            assert_eq!(m.proof.dropped.len(), planted, "n={chain_len} k={planted}");

            let db = w.named_database();
            for minimize_on in [false, true] {
                for executor in [
                    ExecutorKind::Program,
                    ExecutorKind::Wcoj,
                    ExecutorKind::Auto,
                ] {
                    let (res, _) = execute_query_with(
                        &db,
                        &q,
                        PlanStrategy::Greedy,
                        &opts(minimize_on, 0, executor),
                    )
                    .unwrap();
                    assert_eq!(
                        res.len() as u64,
                        w.expected_output_size(),
                        "n={chain_len} k={planted} minimize={minimize_on} {executor:?}"
                    );
                }
            }
        }
    }
}

/// The compile stage reports what it did: the summary's atom counts and
/// drop list line up with the standalone `minimize`, and are absent when
/// minimization is switched off.
#[test]
fn summary_reflects_the_fold() {
    let w = PlantedRedundancy::new(3, 2, 11, 2);
    let db = w.named_database();
    let q = w.query();
    let (on, _) = execute_query_with(
        &db,
        &q,
        PlanStrategy::Greedy,
        &opts(true, 0, ExecutorKind::Program),
    )
    .unwrap();
    let summary = on.minimize.expect("summary when minimizing");
    assert_eq!(summary.atoms_before, w.total_atoms());
    assert_eq!(summary.atoms_after, w.core_size());
    assert_eq!(summary.dropped.len(), 2);
    assert!(summary.agm_after <= summary.agm_before);
    let (off, _) = execute_query_with(
        &db,
        &q,
        PlanStrategy::Greedy,
        &opts(false, 0, ExecutorKind::Program),
    )
    .unwrap();
    assert!(off.minimize.is_none(), "no summary when minimize is off");
}
