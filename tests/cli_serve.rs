//! End-to-end tests of `mjoin_cli serve` / `mjoin_cli client`: a real
//! server process on an OS-assigned port, driven over the wire.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

/// Spawn `mjoin_cli serve` on port 0 and scrape the bound address from
/// the `serve: listening on <addr>` line — the same contract scripts
/// (and the CI smoke step) rely on.
fn spawn_server(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mjoin_cli"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("server spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("banner line");
    let addr = line
        .trim()
        .strip_prefix("serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .to_string();
    (child, addr)
}

/// Run `mjoin_cli client` against `addr`, feeding `requests` on stdin.
/// Returns (exit ok, stdout).
fn run_client(addr: &str, requests: &str) -> (bool, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_mjoin_cli"))
        .args(["client", "--addr", addr])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("client spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(requests.as_bytes())
        .expect("requests written");
    let out = child.wait_with_output().expect("client exits");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn serve_and_client_round_trip_with_admission_gate() {
    // Budget 100: the two-relation CPF program (bounds 7 and 49) is
    // admitted; the Cartesian AB ⋈ CD (bound 7·20 = 140) is not.
    let (mut server, addr) = spawn_server(&["--max-cost", "100"]);

    // Happy path: load a catalog, run a compiled program, inspect stats.
    let (ok, out) = run_client(
        &addr,
        concat!(
            "{\"cmd\":\"ping\"}\n",
            "# comments and blank lines are skipped\n",
            "\n",
            "{\"cmd\":\"load\",\"catalog\":\"c\",\"name\":\"ab\",\"tsv\":\"A\\tB\\n0\\t1\\n1\\t2\\n2\\t3\\n\"}\n",
            "{\"cmd\":\"load\",\"catalog\":\"c\",\"name\":\"bc\",\"tsv\":\"B\\tC\\n1\\t2\\n2\\t3\\n3\\t4\\n\"}\n",
            "{\"cmd\":\"compile\",\"catalog\":\"c\",\"name\":\"p\",\"scheme\":\"AB,BC\",\
             \"program\":\"R(V) := R(AB) ⋉ R(BC)\\nR(V) := R(V) ⋈ R(BC)\"}\n",
            "{\"cmd\":\"run\",\"catalog\":\"c\",\"name\":\"p\"}\n",
            "{\"cmd\":\"explain\",\"catalog\":\"c\",\"name\":\"p\"}\n",
            "{\"cmd\":\"stats\"}\n",
        ),
    );
    assert!(ok, "all requests admitted, client exits 0:\n{out}");
    assert!(out.contains("\"rows\":"), "run reports rows:\n{out}");
    assert!(
        out.contains("\"admitted\":true"),
        "explain reports the admission verdict:\n{out}"
    );
    assert!(
        out.contains("\"serve.run\":"),
        "stats carries the serve.* counters:\n{out}"
    );

    // The blowup guard: a certified-Cartesian inline program is refused
    // before execution, the error payload names the statement and bound,
    // and the client's exit status makes the rejection script-visible.
    // 11 × 11 rows certify a 121-tuple product, over the budget of 100.
    let tsv_json = |a: &str, b: &str| {
        let mut t = format!("{a}\\t{b}\\n");
        for i in 0..11 {
            t.push_str(&format!("{i}\\t{}\\n", i + 1));
        }
        t
    };
    let (ok, out) = run_client(
        &addr,
        &format!(
            concat!(
                "{{\"cmd\":\"load\",\"catalog\":\"x\",\"name\":\"ab\",\"tsv\":\"{}\"}}\n",
                "{{\"cmd\":\"load\",\"catalog\":\"x\",\"name\":\"cd\",\"tsv\":\"{}\"}}\n",
                "{{\"cmd\":\"run\",\"catalog\":\"x\",\"scheme\":\"AB,CD\",\
                 \"program\":\"R(V) := R(AB) \u{22c8} R(CD)\"}}\n",
            ),
            tsv_json("A", "B"),
            tsv_json("C", "D"),
        ),
    );
    assert!(!ok, "a rejected request must fail the client:\n{out}");
    assert!(
        out.contains("\"kind\":\"admission\""),
        "structured admission error:\n{out}"
    );
    assert!(
        out.contains("\"stmt\":0"),
        "offending statement named:\n{out}"
    );
    assert!(
        out.contains("\"bound\":"),
        "certified bound reported:\n{out}"
    );

    // Graceful shutdown: the server process exits cleanly.
    let (ok, _) = run_client(&addr, "{\"cmd\":\"shutdown\"}\n");
    assert!(ok, "shutdown acknowledged");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exits 0 after shutdown");
}

#[test]
fn cq_query_and_explain_with_minimization_over_the_wire() {
    // Budget 10 against a 3-tuple edge relation: the literal 4-atom body
    // certifies an AGM bound of 27 (three forced cover atoms) and is
    // rejected, while its 2-atom core certifies 9 and is admitted — the
    // same query gets through *because* the server compiled the core.
    let (mut server, addr) = spawn_server(&["--max-cost", "10"]);
    let load = "{\"cmd\":\"load\",\"catalog\":\"c\",\"name\":\"e\",\
                \"tsv\":\"s\\td\\n0\\t1\\n1\\t2\\n2\\t3\\n\"}\n";
    let cq = "Q(x, z) :- e(x, y), e(y, z), e(x, d), e(y, d2)";

    // Explain: lints + the minimization report, no execution.
    let (ok, out) = run_client(
        &addr,
        &format!("{load}{{\"cmd\":\"explain\",\"catalog\":\"c\",\"cq\":\"{cq}\"}}\n"),
    );
    assert!(ok, "explain succeeds:\n{out}");
    assert!(
        out.contains("\"lint\":\"redundant-atom\""),
        "explain reports query lints:\n{out}"
    );
    assert!(
        out.contains("\"atoms_before\":4") && out.contains("\"atoms_after\":2"),
        "explain reports the fold:\n{out}"
    );
    assert!(
        out.contains("\"admitted\":true"),
        "the core's bound fits the budget:\n{out}"
    );

    // Query with minimization (the default): admitted, answers returned,
    // and the response says what was dropped.
    let (ok, out) = run_client(
        &addr,
        &format!("{{\"cmd\":\"query\",\"catalog\":\"c\",\"cq\":\"{cq}\"}}\n"),
    );
    assert!(ok, "minimized query admitted:\n{out}");
    assert!(out.contains("\"rows\":2"), "two 2-step pairs:\n{out}");
    assert!(
        out.contains("\"dropped\":["),
        "response lists dropped atoms:\n{out}"
    );

    // The same query with minimize:false must bounce off the admission
    // gate: the literal body's bound exceeds the budget.
    let (ok, out) = run_client(
        &addr,
        &format!("{{\"cmd\":\"query\",\"catalog\":\"c\",\"cq\":\"{cq}\",\"minimize\":false}}\n"),
    );
    assert!(!ok, "unminimized query rejected:\n{out}");
    assert!(
        out.contains("\"kind\":\"admission\""),
        "structured admission error:\n{out}"
    );

    // Malformed: explain with both name and cq is a protocol error.
    let (ok, out) = run_client(
        &addr,
        "{\"cmd\":\"explain\",\"catalog\":\"c\",\"name\":\"p\",\"cq\":\"Q(x) :- e(x, y)\"}\n",
    );
    assert!(!ok, "ambiguous explain rejected:\n{out}");
    assert!(
        out.contains("exactly one of"),
        "error names the contract:\n{out}"
    );

    let (ok, _) = run_client(&addr, "{\"cmd\":\"shutdown\"}\n");
    assert!(ok, "shutdown acknowledged");
    let status = server.wait().expect("server exits");
    assert!(status.success(), "server exits 0 after shutdown");
}
