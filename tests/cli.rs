//! End-to-end tests of the `mjoin_cli` binary: every command, over real TSV
//! files, checking stdout is clean TSV and diagnostics land on stderr.

use std::io::Write;
use std::process::{Command, Output};

fn write_tsv(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mjoin_cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn cli_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mjoin_cli"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

struct Fixture {
    _dir: tempdir::TempDir,
    files: Vec<String>,
}

/// Minimal tempdir (std-only) so the test has no extra dependencies.
mod tempdir {
    pub struct TempDir(std::path::PathBuf);
    impl TempDir {
        pub fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "mjoin-cli-test-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
        pub fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn triangle_fixture() -> Fixture {
    let dir = tempdir::TempDir::new("tri");
    let files = vec![
        write_tsv(dir.path(), "r1.tsv", "A\tB\n1\t2\n1\t3\n9\t9\n"),
        write_tsv(dir.path(), "r2.tsv", "B\tC\n2\t5\n3\t6\n"),
        write_tsv(dir.path(), "r3.tsv", "C\tA\n5\t1\n6\t1\n"),
    ]
    .into_iter()
    .map(|p| p.to_string_lossy().into_owned())
    .collect();
    Fixture { _dir: dir, files }
}

#[test]
fn analyze_reports_scheme_facts() {
    let fx = triangle_fixture();
    let args: Vec<&str> = std::iter::once("analyze")
        .chain(fx.files.iter().map(String::as_str))
        .collect();
    let out = cli(&args);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("relations: 3"));
    assert!(text.contains("connected: true"));
    assert!(text.contains("acyclic (GYO): false"));
}

#[test]
fn run_emits_tsv_on_stdout_and_costs_on_stderr() {
    let fx = triangle_fixture();
    let args: Vec<&str> = std::iter::once("run")
        .chain(fx.files.iter().map(String::as_str))
        .collect();
    let out = cli(&args);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    // stdout: header + the 2 join tuples.
    assert_eq!(stdout.lines().count(), 3, "stdout:\n{stdout}");
    assert!(stdout.starts_with("A\tB\tC\n"));
    assert!(stdout.contains("1\t2\t5"));
    assert!(stdout.contains("1\t3\t6"));
    // stderr carries the plan and the costs.
    assert!(stderr.contains("program"));
    assert!(stderr.contains("cost(P(D))"));
}

#[test]
fn run_with_dp_optimizer() {
    let fx = triangle_fixture();
    let mut args = vec!["run", "--optimizer", "dp"];
    args.extend(fx.files.iter().map(String::as_str));
    let out = cli(&args);
    assert!(out.status.success());
}

#[test]
fn plan_does_not_execute() {
    let fx = triangle_fixture();
    let args: Vec<&str> = std::iter::once("plan")
        .chain(fx.files.iter().map(String::as_str))
        .collect();
    let out = cli(&args);
    assert!(out.status.success());
    assert!(out.stdout.is_empty(), "plan must not write result TSV");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("T2 (CPF)"));
}

#[test]
fn query_command_answers() {
    let fx = triangle_fixture();
    let mut args = vec!["query", "Q(x, z) :- r1(x, y), r2(y, z)"];
    args.extend(fx.files.iter().map(String::as_str));
    let out = cli(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("x\tz\n"));
    assert!(stdout.contains("1\t5"));
    assert!(stdout.contains("1\t6"));
}

#[test]
fn help_exits_success() {
    // `--help`, `-h` and the bare `help` command all print usage to stdout
    // and exit 0 — asking for help is not an error.
    for args in [&["--help"][..], &["-h"], &["help"], &["run", "--help"]] {
        let out = cli(args);
        assert!(out.status.success(), "help must exit 0 for {args:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("usage"), "stdout:\n{stdout}");
        assert!(stdout.contains("--explain-analyze"));
    }
}

#[test]
fn query_accepts_dp_linear_optimizer() {
    let fx = triangle_fixture();
    let mut args = vec![
        "query",
        "--optimizer",
        "dp-linear",
        "Q(x, z) :- r1(x, y), r2(y, z)",
    ];
    args.extend(fx.files.iter().map(String::as_str));
    let out = cli(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1\t5"));
    assert!(stdout.contains("1\t6"));
}

#[test]
fn explain_analyze_reports_on_stderr_keeps_stdout_clean() {
    let fx = triangle_fixture();
    let mut args = vec!["run", "--explain-analyze"];
    args.extend(fx.files.iter().map(String::as_str));
    let out = cli(&args);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // stdout stays machine-readable TSV: header + 2 result tuples.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(stdout.lines().count(), 3, "stdout:\n{stdout}");
    assert!(stdout.starts_with("A\tB\tC\n"));
    // The report lands on stderr, with per-statement rows and the schedule.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("EXPLAIN ANALYZE"), "stderr:\n{stderr}");
    assert!(stderr.contains("schedule:"));
    assert!(stderr.contains("stmt   0"));
    assert!(stderr.contains("rows"));
}

#[test]
fn mjoin_trace_env_writes_chrome_trace_json() {
    let fx = triangle_fixture();
    let dir = tempdir::TempDir::new("trace");
    let trace_path = dir.path().join("out.json");
    let args: Vec<&str> = std::iter::once("run")
        .chain(fx.files.iter().map(String::as_str))
        .collect();
    let out = cli_env(&args, &[("MJOIN_TRACE", trace_path.to_str().unwrap())]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    assert!(json.contains("\"traceEvents\""), "trace:\n{json}");
    assert!(json.contains("\"ph\":\"X\""), "no span events:\n{json}");
}

fn fixture_path(name: &str) -> String {
    format!("{}/examples/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_accepts_clean_program() {
    let out = cli(&["check", "--deny", "warn", &fixture_path("example6.mj")]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "check writes nothing to stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("0 error(s), 0 warning(s), 0 note(s)"));
}

#[test]
fn check_flags_cartesian_join_and_denies_warn() {
    let path = fixture_path("cartesian.mj");
    // Default --deny error: warnings are reported but do not fail the run.
    let out = cli(&["check", &path]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cartesian-join"), "stderr:\n{stderr}");
    // --deny warn turns the warning into a nonzero exit.
    let out = cli(&["check", "--deny", "warn", &path]);
    assert!(!out.status.success());
    // --scheme overrides the file's directive (same scheme here).
    let out = cli(&["check", "--deny", "warn", "--scheme", "AB,BC,CD", &path]);
    assert!(!out.status.success());
}

#[test]
fn check_flags_redundant_recompute_as_json() {
    let out = cli(&[
        "check",
        "--deny",
        "warn",
        "--format",
        "json",
        &fixture_path("redundant.mj"),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("\"lint\":\"redundant-recompute\""),
        "stderr:\n{stderr}"
    );
    assert!(stderr.contains("\"lint\":\"noop-semijoin\""));
    assert!(stderr.contains("\"warnings\":2"));
}

#[test]
fn check_rejects_bad_invocations() {
    // No scheme anywhere.
    let dir = tempdir::TempDir::new("check");
    let p = write_tsv(dir.path(), "p.mj", "R(V) := R(AB) ⋈ R(BC)\n");
    let out = cli(&["check", p.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("# scheme:"), "stderr:\n{stderr}");
    // Bad deny level / format.
    let fx = fixture_path("example6.mj");
    assert!(!cli(&["check", "--deny", "loud", &fx]).status.success());
    assert!(!cli(&["check", "--format", "xml", &fx]).status.success());
    // Unparseable program.
    let bad = write_tsv(dir.path(), "bad.mj", "# scheme: AB,BC\nR(V) = oops\n");
    assert!(!cli(&["check", bad.to_str().unwrap()]).status.success());
}

#[test]
fn errors_exit_nonzero() {
    // Unknown command.
    let out = cli(&["frobnicate", "x.tsv"]);
    assert!(!out.status.success());
    // Missing file.
    let out = cli(&["run", "/nonexistent/never.tsv"]);
    assert!(!out.status.success());
    // Bad optimizer name.
    let fx = triangle_fixture();
    let mut args = vec!["run", "--optimizer", "quantum"];
    args.extend(fx.files.iter().map(String::as_str));
    let out = cli(&args);
    assert!(!out.status.success());
    // No args at all.
    let out = cli(&[]);
    assert!(!out.status.success());
}

#[test]
fn disconnected_inputs_rejected_with_message() {
    let dir = tempdir::TempDir::new("disc");
    let f1 = write_tsv(dir.path(), "a.tsv", "A\tB\n1\t2\n");
    let f2 = write_tsv(dir.path(), "b.tsv", "X\tY\n3\t4\n");
    let out = cli(&["run", f1.to_str().unwrap(), f2.to_str().unwrap()]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("disconnected"));
}

#[test]
fn datalog_command_computes_fixpoint_and_traces_iterations() {
    let dir = tempdir::TempDir::new("datalog");
    let edges = write_tsv(dir.path(), "e.tsv", "s\td\n0\t1\n1\t2\n2\t3\n");
    let out = cli(&[
        "datalog",
        "--explain-analyze",
        "t(x, y) :- e(x, y). t(x, z) :- t(x, y), e(y, z).",
        edges.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Transitive closure of the 4-node chain: C(4,2) = 6 pairs.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("# t (6 facts)"), "stdout:\n{stdout}");
    assert!(stdout.contains("0\t3"));
    // Fixpoint diagnostics and per-iteration spans land on stderr.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("fixpoint after"), "stderr:\n{stderr}");
    assert!(stderr.contains("datalog/iteration"), "stderr:\n{stderr}");
    assert!(stderr.contains("datalog/fixpoint"), "stderr:\n{stderr}");
}

fn query_fixture(name: &str) -> String {
    format!("{}/examples/queries/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_query_lints_cq_fixtures() {
    // All three fixtures are clean at the default --deny error threshold:
    // the planted redundancy and the Cartesian split are warnings.
    let out = cli(&[
        "check",
        "--query",
        &query_fixture("redundant.cq"),
        &query_fixture("cartesian.cq"),
        &query_fixture("clean.cq"),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out.stdout.is_empty(), "check writes nothing to stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("redundant-atom"), "stderr:\n{stderr}");
    assert!(stderr.contains("cartesian-component"), "stderr:\n{stderr}");
    // The redundancy diagnostic carries its proof: the equivalent core.
    assert!(stderr.contains("2-atom core"), "stderr:\n{stderr}");

    // --deny warn flips the planted fixture to a nonzero exit …
    let out = cli(&[
        "check",
        "--query",
        "--deny",
        "warn",
        &query_fixture("redundant.cq"),
    ]);
    assert!(!out.status.success());
    // … while the fixture that is its own core stays clean.
    let out = cli(&[
        "check",
        "--query",
        "--deny",
        "warn",
        &query_fixture("clean.cq"),
    ]);
    assert!(out.status.success());
}

#[test]
fn check_autodetects_cq_sources_and_emits_json() {
    // A `.cq` extension routes through the query linter without --query.
    let out = cli(&[
        "check",
        "--deny",
        "warn",
        "--format",
        "json",
        &query_fixture("redundant.cq"),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("\"lint\":\"redundant-atom\""),
        "stderr:\n{stderr}"
    );
}

#[test]
fn check_rejects_mixed_query_and_program_sources() {
    let out = cli(&[
        "check",
        "--query",
        &query_fixture("clean.cq"),
        &fixture_path("example6.mj"),
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("mix"), "stderr:\n{stderr}");
}

#[test]
fn query_minimize_flag_controls_core_compilation() {
    let dir = tempdir::TempDir::new("minimize");
    let edges = write_tsv(dir.path(), "e.tsv", "s\td\n0\t1\n1\t2\n2\t3\n");
    let q = "Q(x, z) :- e(x, y), e(y, z), e(x, d)";
    // Default: the planted atom is folded away and reported on stderr.
    let out = cli(&["query", q, edges.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let on_stdout = String::from_utf8(out.stdout).unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("minimize: dropped 1 of 3 atoms"),
        "stderr:\n{stderr}"
    );
    // Opting out executes the literal body — same answers, no fold note.
    let out = cli(&["query", "--minimize", "off", q, edges.to_str().unwrap()]);
    assert!(out.status.success());
    let off_stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        on_stdout, off_stdout,
        "answers must not depend on --minimize"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("minimize:"), "stderr:\n{stderr}");
    // A query that is its own core says so.
    let out = cli(&[
        "query",
        "Q(x, z) :- e(x, y), e(y, z)",
        edges.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("minimize: query is its own core"),
        "stderr:\n{stderr}"
    );
}
