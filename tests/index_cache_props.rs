//! Property test: random Algorithm-2 programs execute identically with the
//! join-index cache force-enabled and force-disabled, at any thread count.
//! The cache is a pure memoization of build-side hash tables — it must
//! never change a single observable of the execution.

use mjoin::optimizer::random_tree;
use mjoin::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scheme_and_db(family: usize, n: usize, seed: u64) -> (DbScheme, Database) {
    let mut c = Catalog::new();
    let scheme = match family {
        0 => mjoin::workloads::schemes::chain(&mut c, n),
        1 => mjoin::workloads::schemes::cycle(&mut c, n.max(3)),
        _ => mjoin::workloads::schemes::star(&mut c, n.max(2) - 1),
    };
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 25,
            domain: 5,
            seed,
            plant_witness: true,
        },
    );
    (scheme, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cache_on_and_off_execute_identically(
        family in 0usize..3,
        n in 3usize..6,
        db_seed in any::<u64>(),
        tree_seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let (scheme, db) = scheme_and_db(family, n, db_seed);
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let d = derive(&scheme, &t1).unwrap();
        let on = execute_with(&d.program, &db, &ExecConfig::with_threads(threads));
        let off = execute_with(
            &d.program,
            &db,
            &ExecConfig::with_threads(threads).without_cache(),
        );
        prop_assert_eq!(&*on.result, &*off.result);
        prop_assert_eq!(on.head_sizes, off.head_sizes);
        prop_assert_eq!(on.ledger, off.ledger);
        prop_assert_eq!(on.peak_resident, off.peak_resident);
    }
}
