//! Property tests for program transformations: dead-code elimination and
//! the statement-kind ablations must preserve `P(D) = ⋈D` while only ever
//! moving cost in the documented direction.

use mjoin::core::{ablate_program, Ablation};
use mjoin::optimizer::random_tree;
use mjoin::prelude::*;
use mjoin::program::eliminate_dead_code;
use mjoin::workloads::schemes;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scheme_and_db(family: usize, n: usize, seed: u64) -> (DbScheme, Database) {
    let mut c = Catalog::new();
    let scheme = match family {
        0 => schemes::chain(&mut c, n),
        1 => schemes::cycle(&mut c, n.max(3)),
        _ => schemes::star(&mut c, n.max(2) - 1),
    };
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 15,
            domain: 4,
            seed,
            plant_witness: true,
        },
    );
    (scheme, db)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dce_preserves_results_and_never_raises_cost(
        family in 0usize..3,
        n in 3usize..6,
        db_seed in any::<u64>(),
        tree_seed in any::<u64>(),
    ) {
        let (scheme, db) = scheme_and_db(family, n, db_seed);
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let d = derive(&scheme, &t1).unwrap();
        let pruned = eliminate_dead_code(&d.program);
        prop_assert!(pruned.len() <= d.program.len());
        validate(&pruned, &scheme).unwrap();
        let before = execute(&d.program, &db);
        let after = execute(&pruned, &db);
        prop_assert!(after.cost() <= before.cost());
        prop_assert_eq!(before.result, after.result);
    }

    #[test]
    fn algorithm2_output_has_no_dead_code(
        family in 0usize..3,
        n in 3usize..6,
        tree_seed in any::<u64>(),
    ) {
        // Every statement Algorithm 2 emits feeds the result.
        let (scheme, _db) = scheme_and_db(family, n, 0);
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let d = derive(&scheme, &t1).unwrap();
        let pruned = eliminate_dead_code(&d.program);
        prop_assert_eq!(pruned.len(), d.program.len());
    }

    #[test]
    fn ablations_stay_correct_and_no_cheaper(
        family in 0usize..3,
        n in 3usize..5,
        db_seed in any::<u64>(),
        tree_seed in any::<u64>(),
        which in 0usize..3,
    ) {
        let (scheme, db) = scheme_and_db(family, n, db_seed);
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let d = derive(&scheme, &t1).unwrap();
        let ablation = [Ablation::NoSemijoins, Ablation::NoProjections, Ablation::Neither][which];
        let weakened = ablate_program(&d.program, &scheme, ablation);
        validate(&weakened, &scheme).unwrap();
        let full = execute(&d.program, &db);
        let weak = execute(&weakened, &db);
        prop_assert_eq!(&*full.result, &db.join_all());
        prop_assert_eq!(&weak.result, &full.result);
        prop_assert!(weak.cost() >= full.cost());
    }

    #[test]
    fn render_parse_roundtrip_on_derived_programs(
        n in 3usize..6,
        tree_seed in any::<u64>(),
        db_seed in any::<u64>(),
    ) {
        // Chains give single-letter-free attribute names? No — schemes::chain
        // uses x0..xn names, which the program parser cannot resolve (it
        // needs single-character attributes). Use a paper-style scheme.
        let mut c = Catalog::new();
        let names = ["AB", "BC", "CD", "DE", "EF"];
        let scheme = DbScheme::parse(&mut c, &names[..n]);
        let db = random_database(
            &scheme,
            &DataGenConfig { tuples_per_relation: 10, domain: 4, seed: db_seed, plant_witness: true },
        );
        let mut rng = StdRng::seed_from_u64(tree_seed);
        let t1 = random_tree(&scheme, &mut rng, false);
        let d = derive(&scheme, &t1).unwrap();
        let text = mjoin::program::display::render(&d.program, &scheme, &c);
        let reparsed = mjoin::program::parse_program(&c, &scheme, &text).unwrap();
        validate(&reparsed, &scheme).unwrap();
        let a = execute(&d.program, &db);
        let b = execute(&reparsed, &db);
        prop_assert_eq!(a.cost(), b.cost());
        prop_assert_eq!(a.result, b.result);
    }
}
