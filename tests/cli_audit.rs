//! End-to-end tests of `mjoin_cli check --format json` and `mjoin_cli
//! audit`: the JSON report must parse with a real (in-test) JSON parser and
//! round-trip its diagnostic fields, and the audit report on the Example 6
//! fixture is pinned as a golden test.

use proptest::prelude::*;
use std::io::Write;
use std::process::{Command, Output};

fn cli(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mjoin_cli"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn cli_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_mjoin_cli"));
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

/// Minimal tempdir (std-only) so the test has no extra dependencies.
mod tempdir {
    pub struct TempDir(std::path::PathBuf);
    impl TempDir {
        pub fn new(tag: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "mjoin-cli-audit-{tag}-{}-{}",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
        pub fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn write_file(dir: &std::path::Path, name: &str, content: &str) -> String {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path.to_string_lossy().into_owned()
}

/// A small but real JSON parser: enough to validate that the CLI's
/// hand-rolled renderers emit structurally valid JSON, not just
/// grep-matchable text.
mod json {
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn get(&self, key: &str) -> Option<&Json> {
            match self {
                Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_num(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing garbage at {}", p.pos));
        }
        Ok(v)
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }
        fn bump(&mut self) -> Result<char, String> {
            let c = self.peek().ok_or("unexpected end of input")?;
            self.pos += 1;
            Ok(c)
        }
        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
                self.pos += 1;
            }
        }
        fn expect(&mut self, c: char) -> Result<(), String> {
            let got = self.bump()?;
            if got == c {
                Ok(())
            } else {
                Err(format!("expected `{c}`, got `{got}` at {}", self.pos))
            }
        }
        fn lit(&mut self, word: &str) -> Result<(), String> {
            for c in word.chars() {
                self.expect(c)?;
            }
            Ok(())
        }
        fn value(&mut self) -> Result<Json, String> {
            self.skip_ws();
            match self.peek().ok_or("unexpected end of input")? {
                '{' => self.object(),
                '[' => self.array(),
                '"' => Ok(Json::Str(self.string()?)),
                't' => self.lit("true").map(|()| Json::Bool(true)),
                'f' => self.lit("false").map(|()| Json::Bool(false)),
                'n' => self.lit("null").map(|()| Json::Null),
                _ => self.number(),
            }
        }
        fn object(&mut self) -> Result<Json, String> {
            self.expect('{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(':')?;
                let val = self.value()?;
                fields.push((key, val));
                self.skip_ws();
                match self.bump()? {
                    ',' => {}
                    '}' => return Ok(Json::Obj(fields)),
                    c => return Err(format!("expected `,` or `}}`, got `{c}`")),
                }
            }
        }
        fn array(&mut self) -> Result<Json, String> {
            self.expect('[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.bump()? {
                    ',' => {}
                    ']' => return Ok(Json::Arr(items)),
                    c => return Err(format!("expected `,` or `]`, got `{c}`")),
                }
            }
        }
        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.bump()? {
                    '"' => return Ok(out),
                    '\\' => match self.bump()? {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self.bump()?;
                                code = code * 16
                                    + d.to_digit(16).ok_or(format!("bad \\u digit `{d}`"))?;
                            }
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        c => return Err(format!("unknown escape `\\{c}`")),
                    },
                    c if (c as u32) < 0x20 => {
                        return Err("raw control character in string".to_string())
                    }
                    c => out.push(c),
                }
            }
        }
        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some('-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

/// Statement lines over the scheme AB,BC,CD that are always parseable and
/// valid in any order (bases always exist; V is introduced up front).
/// Several deliberately trip lints so the diagnostics array is non-trivial.
const STMT_MENU: [&str; 7] = [
    "R(V) := R(V) ⋈ R(BC)",
    "R(V) := R(V) ⋈ R(CD)",
    "R(AB) := R(AB) ⋉ R(BC)",
    "R(BC) := R(BC) ⋉ R(BC)", // noop-semijoin
    "R(W) := R(AB) ⋈ R(CD)",  // cartesian-join (+ maybe dead-store)
    "R(X) := π_B R(BC)",      // dead temp unless last
    "R(V) := R(V) ⋉ R(AB)",
];

fn program_text(picks: &[usize]) -> String {
    let mut text = String::from("# scheme: AB,BC,CD\nR(V) := R(AB) ⋈ R(BC)\n");
    for &i in picks {
        text.push_str(STMT_MENU[i]);
        text.push('\n');
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `check --format json` always emits structurally valid JSON whose
    /// diagnostic fields round-trip: severity tallies in the summary match
    /// the diagnostics array, and every entry carries typed fields.
    #[test]
    fn check_json_parses_and_roundtrips(picks in prop::collection::vec(0usize..STMT_MENU.len(), 0..10)) {
        let dir = tempdir::TempDir::new("prop");
        let path = write_file(dir.path(), "p.mj", &program_text(&picks));
        let out = cli(&["check", "--format", "json", "--deny", "note", &path]);
        let stderr = String::from_utf8(out.stderr).unwrap();
        let line = stderr.lines().next().unwrap_or_default();
        let doc = json::parse(line).map_err(|e| format!("invalid JSON ({e}):\n{line}"))?;

        let diags = doc.get("diagnostics").and_then(json::Json::as_arr)
            .ok_or_else(|| "missing diagnostics array".to_string())?;
        let mut tally = [0u32; 3]; // note, warn, error
        for d in diags {
            let sev = d.get("severity").and_then(json::Json::as_str)
                .ok_or_else(|| "diagnostic without severity".to_string())?;
            let slot = match sev {
                "note" => 0,
                "warn" => 1,
                "error" => 2,
                other => return Err(format!("bad severity `{other}`")),
            };
            tally[slot] += 1;
            let lint = d.get("lint").and_then(json::Json::as_str)
                .ok_or_else(|| "diagnostic without lint".to_string())?;
            prop_assert!(!lint.is_empty());
            prop_assert!(d.get("message").and_then(json::Json::as_str).is_some());
            // stmt is null or a non-negative integer.
            match d.get("stmt") {
                Some(json::Json::Null) => {}
                Some(j) => {
                    let n = j.as_num().ok_or_else(|| format!("bad stmt field {j:?}"))?;
                    prop_assert!(n >= 0.0 && n.fract() == 0.0);
                }
                None => return Err("diagnostic without stmt field".to_string()),
            }
            prop_assert!(matches!(
                d.get("excerpt"),
                Some(json::Json::Null | json::Json::Str(_))
            ));
        }
        let count = |key: &str| doc.get(key).and_then(json::Json::as_num).unwrap_or(-1.0) as u32;
        prop_assert_eq!(count("notes"), tally[0]);
        prop_assert_eq!(count("warnings"), tally[1]);
        prop_assert_eq!(count("errors"), tally[2]);
        // Exit status agrees with the report: clean at `note` iff empty.
        prop_assert_eq!(out.status.success(), diags.is_empty());
    }
}

fn example6() -> String {
    format!(
        "{}/examples/programs/example6.mj",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn example6_data() -> String {
    format!("{}/examples/data", env!("CARGO_MANIFEST_DIR"))
}

/// Golden test: the audit report for Example 6 over the checked-in fixture
/// data is pinned byte-for-byte (it contains no timings, so it is
/// deterministic).
#[test]
fn audit_example6_golden_report() {
    let out = cli(&["audit", &example6(), &example6_data()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    let expected = "\
audit: 10 statements, ledger = 5 inputs + 10 heads = 15 total
stmt  measured      bound  kind       symbolic bound
   0         1          2  tight      |⋈D[{ABC}]|  (est 2)
   1         1          2  tight      |⋈D[{ABC}]|  (est 2)
   2         1          1  tight      |⋈D[{ABC,CDE}]|  (est 1)
   3         1          1  tight      |⋈D[{ABC,CDE}]|  (est 1)
   4         1          1  tight      |⋈D[{ABC,CDE}]|  (est 1)
   5         1          1  tight      |⋈D[{ABC,CDE}]|  (est 1)
   6         1          1  tight      |⋈D[{ABC,CDE,EFG}]|  (est 1)
   7         1          1  tight      |⋈D[{ABC,CDE,EFG}]|  (est 1)
   8         1          1  tight      |⋈D[{ABC,CDE,EFG}]|  (est 1)
   9         1          1  tight      |⋈D[{ABC,CDE,EFG,AGH}]|  (est 1)
estimator: worst q-error 2.00 at statement 0 (est 2 vs measured 1)
verdict: all measured costs within static bounds
";
    assert_eq!(stdout, expected, "golden audit report drifted:\n{stdout}");
}

/// The JSON audit report parses and its fields are coherent: bounds hold,
/// measured ≤ bound per statement, and the embedded lint report is clean.
#[test]
fn audit_example6_json_is_valid_and_clean() {
    let out = cli(&["audit", "--format", "json", &example6(), &example6_data()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let doc = json::parse(stdout.trim()).expect("audit JSON parses");
    assert_eq!(doc.get("bounds_hold"), Some(&json::Json::Bool(true)));
    let stmts = doc.get("stmts").and_then(json::Json::as_arr).unwrap();
    assert_eq!(stmts.len(), 10);
    for s in stmts {
        let measured = s.get("measured").and_then(json::Json::as_num).unwrap();
        let bound = s.get("bound").and_then(json::Json::as_num).unwrap();
        let lo = s.get("lo").and_then(json::Json::as_num).unwrap();
        let hi = s.get("hi").and_then(json::Json::as_num).unwrap();
        assert!(measured <= bound);
        assert!(lo <= measured && measured <= hi);
    }
    let report = doc.get("report").unwrap();
    assert_eq!(report.get("errors").and_then(json::Json::as_num), Some(0.0));
    let cert = doc.get("certificate").unwrap();
    assert_eq!(
        cert.get("stmts")
            .and_then(json::Json::as_arr)
            .map(<[json::Json]>::len),
        Some(10)
    );
}

/// `check --verify-run` chains the lint pass and the audit; bad
/// invocations of both commands fail with a message, not a panic.
#[test]
fn verify_run_and_error_paths() {
    let out = cli(&["check", "--verify-run", &example6(), &example6_data()]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("verdict: all measured costs within static bounds"));
    assert!(out.stdout.is_empty(), "check keeps stdout clean");

    // Data without --verify-run is rejected.
    let out = cli(&["check", &example6(), &example6_data()]);
    assert!(!out.status.success());

    // audit without data, with a missing relation, and with an unmatched
    // extra file all fail cleanly.
    let out = cli(&["audit", &example6()]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("needs TSV data"));

    let dir = tempdir::TempDir::new("err");
    let abc = write_file(dir.path(), "abc.tsv", "A\tB\tC\n1\t2\t3\n");
    let out = cli(&["audit", &example6(), &abc]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("no data file matches"));

    let xy = write_file(dir.path(), "xy.tsv", "X\tY\n1\t2\n");
    let out = cli(&["audit", &example6(), &example6_data(), &xy]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("matches no relation"));
}

/// `MJOIN_PAR_CUTOFF` reaches the executor: forcing the parallel paths for
/// every row count must not change any result or measured cost.
#[test]
fn par_cutoff_env_does_not_change_results() {
    let baseline = cli(&["audit", &example6(), &example6_data()]);
    for cutoff in ["0", "1000000"] {
        let out = cli_env(
            &["audit", &example6(), &example6_data()],
            &[("MJOIN_PAR_CUTOFF", cutoff)],
        );
        assert!(
            out.status.success(),
            "cutoff {cutoff} stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            out.stdout, baseline.stdout,
            "cutoff {cutoff} changed the audit report"
        );
    }
}
