//! Integration test: the paper's quantitative claims, end to end.
//!
//! This is the executable record behind EXPERIMENTS.md — every inequality
//! the paper states about Examples 3, 5 and 6 and Theorems 1–2 is asserted
//! here at reproducible scales.

use mjoin::prelude::*;
use mjoin::program::display;

/// Example 3 at k = 1 (m = 10): the three cost inequalities of §2.3.
#[test]
fn example3_cost_inequalities_at_k1() {
    let ex = Example3::for_k(1);
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);

    let optimal = ex.min_overall_cost(&scheme);
    // The optimal tree is the bowtie, non-CPF and nonlinear.
    assert_eq!(optimal, ex.optimal_cost(&scheme));
    assert!(!Example3::optimal_tree().is_cpf(&scheme));
    assert!(!Example3::optimal_tree().is_linear());

    // "cost(E(D)) is less than 10^(4k+1)"
    assert!(optimal < ex.paper_optimal_bound());
    // "If we apply to D any CPF join expression exactly over D, the cost
    //  exceeds 2·10^(5k)."
    assert!(ex.min_cpf_cost(&scheme) > ex.paper_cpf_lower_bound());
    // "The cost of any linear join expression applied to D also becomes
    //  greater than 2·10^(5k)."
    assert!(ex.min_linear_cost(&scheme) > ex.paper_cpf_lower_bound());
}

/// The closed forms extend the claims to k = 2..4 where materialization is
/// impossible.
#[test]
fn example3_cost_inequalities_scale_with_k() {
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    for k in 1..=4u32 {
        let ex = Example3::for_k(k);
        assert!(ex.optimal_cost(&scheme) < ex.paper_optimal_bound(), "k={k}");
        assert!(
            ex.min_cpf_cost(&scheme) > ex.paper_cpf_lower_bound(),
            "k={k}"
        );
        assert!(
            ex.min_linear_cost(&scheme) > ex.paper_cpf_lower_bound(),
            "k={k}"
        );
    }
}

/// Example 3's consistency facts: pairwise consistent, not globally
/// consistent, ⋈D a single tuple, semijoin fixpoint a no-op.
#[test]
fn example3_consistency_facts() {
    let ex = Example3::new(5);
    let mut catalog = Catalog::new();
    let db = ex.database(&mut catalog);
    assert!(pairwise_consistent(&db));
    assert!(!globally_consistent(&db));
    assert_eq!(db.join_all().len(), 1);
    let mut ledger = CostLedger::new();
    let (reduced, effective) = semijoin_fixpoint(&db, &mut ledger);
    assert_eq!(
        effective, 0,
        "the paper: semijoin programs are useless here"
    );
    assert_eq!(reduced, db);
}

/// Example 5: Algorithm 1 produces exactly 16 CPF trees from Figure 1's
/// expression, one of which is Figure 2's.
#[test]
fn example5_sixteen_cpf_trees() {
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    let t1 = parse_join_tree(&catalog, &scheme, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
    let outcomes = algorithm1_all_outcomes(&scheme, &t1).unwrap();
    assert_eq!(outcomes.len(), 16);
    let fig2 = parse_join_tree(&catalog, &scheme, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
    assert!(outcomes.contains(&fig2));
    for t in &outcomes {
        assert!(t.is_cpf(&scheme));
        assert!(t.is_exactly_over(&scheme));
    }
}

/// Example 6: the exact statement sequence, and its cost on Example 3's
/// database — the same order as the paper's 2·10^(4k) (we assert the scaling
/// shape: Θ(m⁴), i.e. quartic growth and far below the CPF lower bound).
#[test]
fn example6_program_and_cost() {
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    let fig2 = parse_join_tree(&catalog, &scheme, "((ABC ⋈ CDE) ⋈ EFG) ⋈ GHA").unwrap();
    let program = algorithm2(&scheme, &fig2).unwrap();

    let text = display::render(&program, &scheme, &catalog);
    assert_eq!(
        text.lines().count(),
        10,
        "Example 6's derivation has 10 statements:\n{text}"
    );
    // The first statement is the semijoin of Example 6.
    assert!(text.lines().next().unwrap().contains("⋉ R(CDE)"));

    let mut costs = Vec::new();
    for m in [5u64, 10, 20] {
        let ex = Example3::new(m);
        let mut c2 = Catalog::new();
        let _ = Example3::scheme(&mut c2);
        let db = ex.database(&mut c2);
        let out = execute(&program, &db);
        assert_eq!(out.result.len(), 1, "P(D) = ⋈D (Theorem 1)");
        // Far below the CPF expression lower bound at the same scale.
        assert!(
            (out.cost() as u128) < ex.paper_cpf_lower_bound(),
            "m={m}: program {} !< CPF bound {}",
            out.cost(),
            ex.paper_cpf_lower_bound()
        );
        costs.push(out.cost());
    }
    // Quartic-ish growth: doubling m multiplies cost by ~16 (not ~32 = m⁵).
    let ratio = costs[2] as f64 / costs[1] as f64;
    assert!(
        (8.0..24.0).contains(&ratio),
        "program cost must scale ~m⁴, got ratio {ratio}"
    );
}

/// The headline: from the optimal join expression, the derived program is
/// quasi-optimal (Theorem 2), and it beats every CPF and linear expression
/// on Example 3.
#[test]
fn quasi_optimal_program_beats_cpf_expressions() {
    let ex = Example3::for_k(1);
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    let db = ex.database(&mut catalog);

    let run = run_pipeline(&scheme, &Example3::optimal_tree(), &db, &mut FirstChoice).unwrap();
    assert_eq!(*run.exec.result, db.join_all());
    assert!(run.bound_holds());

    let program_cost = run.program_cost() as u128;
    assert!(program_cost < ex.min_cpf_cost(&scheme));
    assert!(program_cost < ex.min_linear_cost(&scheme));
    // On this database the program even beats the optimal expression.
    assert!(program_cost < ex.optimal_cost(&scheme));
}

/// Theorem 2's hypothesis matters: the bound is stated for ⋈D ≠ ∅. With an
/// empty join the pipeline still computes the correct (empty) result.
#[test]
fn empty_join_still_correct() {
    let mut catalog = Catalog::new();
    let scheme = DbScheme::parse(&mut catalog, &["AB", "BC"]);
    let db = Database::from_relations(vec![
        relation_of_ints(&mut catalog, "AB", &[&[1, 2]]).unwrap(),
        relation_of_ints(&mut catalog, "BC", &[&[9, 9]]).unwrap(),
    ]);
    assert!(db.join_all().is_empty());
    let t = JoinTree::left_deep(&[0, 1]);
    let run = run_pipeline(&scheme, &t, &db, &mut FirstChoice).unwrap();
    assert!(run.exec.result.is_empty());
}
