//! Property-based tests of the relational-algebra substrate: the laws the
//! paper's proofs silently rely on.

use mjoin::prelude::*;
use proptest::prelude::*;

/// Build a relation over `scheme` (single-letter attributes, canonical
/// catalog) from generated rows; values are kept in written order.
fn rel(catalog: &mut Catalog, scheme: &str, rows: &[Vec<i64>]) -> Relation {
    let refs: Vec<&[i64]> = rows.iter().map(std::vec::Vec::as_slice).collect();
    relation_of_ints(catalog, scheme, &refs).unwrap()
}

fn rows(arity: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..5i64, arity), 0..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn join_is_commutative(ra in rows(2), rb in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        prop_assert_eq!(ops::join(&r, &s), ops::join(&s, &r));
    }

    #[test]
    fn join_is_associative(ra in rows(2), rb in rows(2), rc in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        let t = rel(&mut c, "CD", &rc);
        prop_assert_eq!(
            ops::join(&ops::join(&r, &s), &t),
            ops::join(&r, &ops::join(&s, &t))
        );
    }

    #[test]
    fn join_is_idempotent(ra in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        prop_assert_eq!(ops::join(&r, &r), r);
    }

    #[test]
    fn semijoin_is_projection_of_join(ra in rows(2), rb in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        let direct = ops::semijoin(&r, &s);
        let via_join = ops::project(&ops::join(&r, &s), r.schema().attrs()).unwrap();
        prop_assert_eq!(direct, via_join);
    }

    #[test]
    fn semijoin_shrinks_and_is_idempotent(ra in rows(2), rb in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        let once = ops::semijoin(&r, &s);
        prop_assert!(once.len() <= r.len());
        for row in once.rows() {
            prop_assert!(r.contains_row(row));
        }
        prop_assert_eq!(ops::semijoin(&once, &s), once.clone());
        // Reduction never changes the join result (the full-reducer premise).
        prop_assert_eq!(ops::join(&once, &s), ops::join(&r, &s));
    }

    #[test]
    fn projection_composes(ra in rows(3)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "ABC", &ra);
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        // π_A(π_AB(R)) = π_A(R).
        let inner = ops::project(&r, &[a, b]).unwrap();
        prop_assert_eq!(
            ops::project(&inner, &[a]).unwrap(),
            ops::project(&r, &[a]).unwrap()
        );
    }

    #[test]
    fn join_size_bounded_by_product(ra in rows(2), rb in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        prop_assert!(ops::join(&r, &s).len() <= r.len() * s.len());
    }

    #[test]
    fn projection_of_join_bounded_by_side(ra in rows(2), rb in rows(2)) {
        // The key inequality in Theorem 2's proof:
        // |π_X(R ⋈ S)| ≤ |R| when X ⊆ scheme(R).
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "BC", &rb);
        let j = ops::join(&r, &s);
        let projected = ops::project(&j, r.schema().attrs()).unwrap();
        prop_assert!(projected.len() <= r.len());
    }

    #[test]
    fn set_ops_laws(ra in rows(2), rb in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let s = rel(&mut c, "AB", &rb);
        let u = ops::union(&r, &s).unwrap();
        let i = ops::intersection(&r, &s).unwrap();
        let d_rs = ops::difference(&r, &s).unwrap();
        // |R ∪ S| + |R ∩ S| = |R| + |S|.
        prop_assert_eq!(u.len() + i.len(), r.len() + s.len());
        // R = (R − S) ∪ (R ∩ S).
        prop_assert_eq!(ops::union(&d_rs, &i).unwrap(), r);
    }

    #[test]
    fn tsv_roundtrip(ra in rows(2)) {
        let mut c = Catalog::new();
        let r = rel(&mut c, "AB", &ra);
        let text = mjoin::relation::tsv::relation_to_tsv(&c, &r);
        let back = mjoin::relation::tsv::relation_from_tsv(&mut c, &text).unwrap();
        prop_assert_eq!(back, r);
    }
}
