//! Differential suite for the certificate-gated Grace-hash spill path:
//! a spilling run must be indistinguishable from the in-memory run in
//! everything but its memory traffic. Spill on/off × 1/2/4/8 threads must
//! agree tuple-for-tuple (and head-for-head), a forced tiny-budget run
//! must actually partition (`mem.partitions > 0` in the trace) while still
//! matching, and the static [`MemCertificate`] must cover the measured
//! peak residency and grow monotonically with the input sizes.

use mjoin::analyze::AnalysisCx;
use mjoin::prelude::*;
use mjoin::trace;
use proptest::prelude::*;
use std::sync::Arc;

/// A 3-chain `AB ⋈ BC ⋈ CD` with a skewed middle: `B` takes only four
/// values, so `AB ⋈ BC` is quadratic in `n` — a head worth spilling.
fn chain_db(catalog: &mut Catalog, n: i64) -> (DbScheme, Database) {
    let scheme = DbScheme::parse(catalog, &["AB", "BC", "CD"]);
    let ab: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % 4]).collect();
    let bc: Vec<Vec<i64>> = (0..n).map(|i| vec![i % 4, i]).collect();
    let cd: Vec<Vec<i64>> = (0..n).map(|i| vec![i, i % 3]).collect();
    fn slices(rows: &[Vec<i64>]) -> Vec<&[i64]> {
        rows.iter().map(Vec::as_slice).collect()
    }
    let db = Database::from_relations(vec![
        relation_of_ints(catalog, "AB", &slices(&ab)).unwrap(),
        relation_of_ints(catalog, "BC", &slices(&bc)).unwrap(),
        relation_of_ints(catalog, "CD", &slices(&cd)).unwrap(),
    ]);
    (scheme, db)
}

/// Derive the paper's program for the left-deep chain and a spill plan
/// from the memory certificate under `budget` bytes.
fn derived(
    catalog: &Catalog,
    scheme: &DbScheme,
    db: &Database,
    budget: u64,
) -> (Derivation, Arc<SpillPlan>) {
    let tree = parse_join_tree(catalog, scheme, "(AB ⋈ BC) ⋈ CD").unwrap();
    let d = derive(scheme, &tree).unwrap();
    let seeds: Vec<u64> = db.relations().iter().map(|r| r.len() as u64).collect();
    let cx = AnalysisCx::new(&d.program, scheme, catalog).unwrap();
    let plan = Arc::new(memory_report(&cx, &seeds).spill_plan(budget));
    (d, plan)
}

#[test]
fn spill_on_off_times_threads_is_byte_identical() {
    let mut catalog = Catalog::new();
    let (scheme, db) = chain_db(&mut catalog, 64);
    let (d, plan) = derived(&catalog, &scheme, &db, 2048);
    assert!(
        plan.any(),
        "a 2 KiB budget must force at least one join to spill"
    );

    let base = execute(&d.program, &db);
    assert_eq!(*base.result, db.join_all(), "baseline is the full join");
    for threads in [1usize, 2, 4, 8] {
        for spill in [None, Some(Arc::clone(&plan))] {
            let spilling = spill.is_some();
            let mut cfg = ExecConfig::with_threads(threads);
            cfg.spill = spill;
            let out = execute_with(&d.program, &db, &cfg);
            assert_eq!(
                *out.result, *base.result,
                "result diverged at {threads} threads, spill={spilling}"
            );
            assert_eq!(
                out.head_sizes, base.head_sizes,
                "head sizes diverged at {threads} threads, spill={spilling}"
            );
            assert_eq!(out.cost(), base.cost(), "ledger diverged");
        }
    }
}

#[test]
fn forced_tiny_budget_partitions_and_still_matches() {
    let mut catalog = Catalog::new();
    let (scheme, db) = chain_db(&mut catalog, 48);
    let (d, plan) = derived(&catalog, &scheme, &db, 1024);
    assert!(plan.any());
    let expected = execute(&d.program, &db);

    trace::set_enabled(true);
    trace::clear();
    let cfg = ExecConfig {
        mem_budget: Some(1024),
        spill: Some(plan),
        ..ExecConfig::default()
    };
    let out = execute_with(&d.program, &db, &cfg);
    let tr = trace::take();
    trace::set_enabled(false);

    assert_eq!(*out.result, *expected.result, "spilled run must match");
    let partitions = tr.counter("mem.partitions").unwrap_or(0);
    let spilled = tr.counter("mem.spilled_bytes").unwrap_or(0);
    let passes = tr.counter("mem.passes").unwrap_or(0);
    assert!(
        partitions > 0,
        "the run must actually partition: {partitions}"
    );
    assert!(spilled > 0, "partitioning writes bytes to disk: {spilled}");
    assert!(passes > 0, "each spilled statement counts a pass: {passes}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The static certificate is sound for residency (its `peak_tuples`
    /// covers the executor's measured high-water mark) and monotone:
    /// growing any input can only grow the certified peak.
    #[test]
    fn certificate_covers_measured_peak_and_is_monotone(
        n in 1i64..24,
        extra in prop::collection::vec(0u64..64, 3),
    ) {
        let mut catalog = Catalog::new();
        let (scheme, db) = chain_db(&mut catalog, n);
        let tree = parse_join_tree(&catalog, &scheme, "(AB ⋈ BC) ⋈ CD").unwrap();
        let d = derive(&scheme, &tree).unwrap();
        let exec = execute(&d.program, &db);
        let seeds: Vec<u64> = db.relations().iter().map(|r| r.len() as u64).collect();
        let cx = AnalysisCx::new(&d.program, &scheme, &catalog).unwrap();

        let mem = memory_report(&cx, &seeds);
        prop_assert!(
            mem.peak_tuples >= exec.peak_resident,
            "certified peak {} tuples < measured {}",
            mem.peak_tuples,
            exec.peak_resident
        );

        let bigger: Vec<u64> = seeds.iter().zip(&extra).map(|(s, e)| s + e).collect();
        let grown = memory_report(&cx, &bigger);
        prop_assert!(grown.peak_tuples >= mem.peak_tuples);
        prop_assert!(grown.peak_bytes >= mem.peak_bytes);
    }
}
