//! Example 3's exponential gap, measured.
//!
//! ```text
//! cargo run --release --example cyclic_gap [max_m]
//! ```
//!
//! For the paper's Example 3 family: sweep the scale `m` (the paper's
//! `10^k`) and print the cost of the optimal (non-CPF) expression, the best
//! CPF expression, the best linear expression, and the program the paper's
//! pipeline derives — demonstrating that the program tracks the optimum
//! while every CPF/linear *expression* falls behind by a factor growing
//! linearly in `m`.

use mjoin::prelude::*;

fn main() {
    let max_m: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    println!("Example 3 family (paper scale m = 10^k); closed-form costs + measured program\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "m", "optimal", "best CPF", "best linear", "program P", "CPF/opt"
    );

    let mut m = 5u64;
    while m <= max_m {
        let ex = Example3::new(m);
        let mut catalog = Catalog::new();
        let scheme = Example3::scheme(&mut catalog);

        // Closed-form expression costs (exact; validated against execution
        // in the test suite).
        let optimal = ex.min_overall_cost(&scheme);
        let best_cpf = ex.min_cpf_cost(&scheme);
        let best_linear = ex.min_linear_cost(&scheme);

        // Measured program cost: derive from the optimal tree and execute.
        let db = ex.database(&mut catalog);
        let t1 = Example3::optimal_tree();
        let run = run_pipeline(&scheme, &t1, &db, &mut FirstChoice).unwrap();
        assert_eq!(run.exec.result.len(), 1, "⋈D is the single all-zero tuple");
        assert!(run.bound_holds(), "Theorem 2 must hold");

        println!(
            "{:>6} {:>14} {:>14} {:>14} {:>14} {:>9.1}x",
            m,
            optimal,
            best_cpf,
            best_linear,
            run.program_cost(),
            best_cpf as f64 / optimal as f64
        );

        m = if m < 10 { 10 } else { m + 10 };
    }

    println!("\npaper bounds at m = 10 (k = 1):");
    let ex = Example3::for_k(1);
    let mut catalog = Catalog::new();
    let scheme = Example3::scheme(&mut catalog);
    println!(
        "  optimal {} < 10^(4k+1) = {}",
        ex.optimal_cost(&scheme),
        ex.paper_optimal_bound()
    );
    println!(
        "  best CPF {} > 2·10^(5k) = {}",
        ex.min_cpf_cost(&scheme),
        ex.paper_cpf_lower_bound()
    );
    println!(
        "  best linear {} > 2·10^(5k) = {}",
        ex.min_linear_cost(&scheme),
        ex.paper_cpf_lower_bound()
    );
}
