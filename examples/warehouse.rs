//! Star-schema (warehouse) workload: the acyclic, real-world-shaped
//! counterpoint to Example 3's adversarial cycle.
//!
//! ```text
//! cargo run --release --example warehouse
//! ```
//!
//! Generates a skewed fact + dimensions star, then answers it four ways —
//! Yannakakis, monotone join after a full reducer, the DP-optimal tree
//! evaluated directly, and the paper's derived program — and prints an
//! `EXPLAIN`-style report of the pipeline.

use mjoin::prelude::*;
use mjoin::workloads::{star_schema, StarSchemaConfig};

fn main() {
    let mut catalog = Catalog::new();
    let cfg = StarSchemaConfig {
        dimensions: 4,
        fact_rows: 2000,
        dim_rows: 100,
        key_coverage: 0.4, // fact rows reference only 40% of keys…
        skew: 1.5,         // …and mostly the hottest few
        seed: 7,
    };
    let (scheme, db) = star_schema(&mut catalog, &cfg);
    println!("star scheme: {}", scheme.display(&catalog));
    println!(
        "fact {} rows, {} dimensions x {} rows; acyclic: {}\n",
        db.relation(0).len(),
        cfg.dimensions,
        cfg.dim_rows,
        is_acyclic(&scheme)
    );

    // 1. Yannakakis (classical polynomial method for acyclic schemes).
    let (yan, yan_ledger) = yannakakis(&scheme, &db, &scheme.all_attrs()).unwrap();
    println!(
        "Yannakakis:            {} tuples, cost {}",
        yan.len(),
        yan_ledger.total()
    );

    // 2. Full reducer + monotone join.
    let (reduced, red_ledger) = fully_reduce(&scheme, &db).unwrap();
    let mono = monotone_join_tree(&scheme).unwrap();
    let mono_eval = evaluate(&mono, &reduced);
    println!(
        "reducer+monotone join: {} tuples, cost {} (+{} reduction)",
        mono_eval.relation.len(),
        mono_eval.ledger.total(),
        red_ledger.total()
    );

    // 3. DP-optimal tree, evaluated directly.
    let mut oracle = ExactOracle::new(&db);
    let best = optimize(&scheme, &mut oracle, SearchSpace::All).unwrap();
    println!(
        "optimal tree direct ev:  {} tuples, cost {}",
        yan.len(),
        best.cost
    );

    // 4. The paper's pipeline from that tree.
    let report =
        mjoin::core::explain(&scheme, &best.tree, &db, &mut FirstChoice, &catalog).unwrap();
    println!("\n{report}");

    // All four agree.
    let run = run_pipeline(&scheme, &best.tree, &db, &mut FirstChoice).unwrap();
    assert_eq!(*run.exec.result, yan);
    assert_eq!(mono_eval.relation, yan);
    println!(
        "all four strategies computed the same {}-tuple join.",
        yan.len()
    );
}
