//! A tour of the optimizer baselines on random cyclic schemes.
//!
//! ```text
//! cargo run --release --example optimizer_tour [seed]
//! ```
//!
//! Generates a random connected scheme + database, then compares every tree
//! source this workspace implements — DP optima over all / CPF / linear
//! spaces, greedy, iterative improvement, simulated annealing, and the
//! cardinality-estimate-driven DP — and finally feeds the best tree through
//! the paper's pipeline.

use mjoin::prelude::*;
use mjoin::workloads::schemes;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let mut catalog = Catalog::new();
    let scheme = schemes::random_connected(&mut catalog, 6, 9, 3, seed);
    println!("random scheme (seed {seed}): {}", scheme.display(&catalog));
    let db = random_database(
        &scheme,
        &DataGenConfig {
            tuples_per_relation: 60,
            domain: 6,
            seed,
            plant_witness: true,
        },
    );
    println!(
        "database: {} relations, {} tuples total, ⋈D = {} tuples\n",
        db.len(),
        db.total_tuples(),
        db.join_all().len()
    );

    let mut rows: Vec<(String, u64, String)> = Vec::new();
    let mut oracle = ExactOracle::new(&db);

    for (name, space) in [
        ("DP optimal (all trees)", SearchSpace::All),
        ("DP best CPF", SearchSpace::Cpf),
        ("DP best linear", SearchSpace::Linear),
        ("DP best linear+CPF", SearchSpace::LinearCpf),
    ] {
        if let Some(opt) = optimize(&scheme, &mut oracle, space) {
            rows.push((
                name.to_string(),
                opt.cost,
                opt.tree.display(&scheme, &catalog).to_string(),
            ));
        }
    }

    let (gt, gc) = greedy(&scheme, &mut oracle, true);
    rows.push((
        "greedy (avoid ×)".into(),
        gc,
        gt.display(&scheme, &catalog).to_string(),
    ));
    let (gt2, gc2) = greedy(&scheme, &mut oracle, false);
    rows.push((
        "greedy (free)".into(),
        gc2,
        gt2.display(&scheme, &catalog).to_string(),
    ));

    let (iit, iic) = iterative_improvement(
        &scheme,
        &mut oracle,
        &IiConfig {
            seed,
            ..Default::default()
        },
    );
    rows.push((
        "iterative improvement".into(),
        iic,
        iit.display(&scheme, &catalog).to_string(),
    ));

    let (sat, sac) = simulated_annealing(
        &scheme,
        &mut oracle,
        &SaConfig {
            seed,
            ..Default::default()
        },
    );
    rows.push((
        "simulated annealing".into(),
        sac,
        sat.display(&scheme, &catalog).to_string(),
    ));

    // Estimate-driven DP: plan with statistics, then cost the chosen tree
    // with the exact oracle (what a real optimizer experiences).
    let mut est = EstimateOracle::new(&scheme, &db);
    if let Some(opt) = optimize(&scheme, &mut est, SearchSpace::All) {
        let actual = cost_of(&opt.tree, &db);
        rows.push((
            "DP on estimates (actual cost)".into(),
            actual,
            opt.tree.display(&scheme, &catalog).to_string(),
        ));
    }

    println!("{:<30} {:>12}  tree", "strategy", "cost");
    for (name, cost, tree) in &rows {
        println!("{name:<30} {cost:>12}  {tree}");
    }

    // Pipeline the optimum.
    let best = optimize(&scheme, &mut oracle, SearchSpace::All).unwrap();
    let run = run_pipeline(&scheme, &best.tree, &db, &mut FirstChoice).unwrap();
    println!(
        "\npipeline on the DP optimum: cost(T₁) = {}, cost(P) = {}, bound r(a+5)·cost(T₁) = {}",
        run.tree_cost,
        run.program_cost(),
        run.quasi_factor * run.tree_cost
    );
    assert_eq!(*run.exec.result, db.join_all());
    println!("P(D) = ⋈D verified.");
}
