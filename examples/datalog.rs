//! Conjunctive (Datalog-style) queries through the paper's pipeline.
//!
//! ```text
//! cargo run --example datalog
//! ```
//!
//! Loads a small social graph and runs several conjunctive queries — the
//! deductive-database workload the paper's introduction motivates. Each
//! query's body atoms become a database scheme; the optimizer picks a join
//! tree; Algorithms 1–2 compile it to a program; the program runs with
//! §2.3 cost accounting.

use mjoin::prelude::*;

fn main() {
    let mut db = NamedDatabase::new();
    // follows(src, dst), person(id, team)
    db.add_relation(
        "follows",
        &["src", "dst"],
        &[
            &[1, 2],
            &[2, 3],
            &[3, 1], // a triangle
            &[3, 4],
            &[4, 5],
            &[5, 3], // a second triangle sharing node 3
            &[1, 5],
            &[2, 5],
        ],
    )
    .unwrap();
    db.add_relation(
        "person",
        &["id", "team"],
        &[&[1, 10], &[2, 10], &[3, 10], &[4, 20], &[5, 20]],
    )
    .unwrap();

    let queries = [
        // Mutual follows.
        "Mutual(x, y) :- follows(x, y), follows(y, x).",
        // Triangles (cyclic scheme! the paper's home turf).
        "Tri(x, y, z) :- follows(x, y), follows(y, z), follows(z, x).",
        // Triangles within one team: a 4-atom cyclic+selection query.
        "TeamTri(x, y, z) :- follows(x, y), follows(y, z), follows(z, x), person(x, 10).",
        // Two-hop reachability into team 20.
        "Reach2(x, z) :- follows(x, y), follows(y, z), person(z, 20).",
        // Boolean: does anyone in team 20 follow someone in team 10?
        "Any() :- follows(x, y), person(x, 20), person(y, 10).",
    ];

    for text in queries {
        let q = parse_query(text).unwrap();
        let res = execute_query(&db, &q, PlanStrategy::DpOptimal).unwrap();
        println!("{q}");
        println!(
            "  {} answers, cost {} tuples",
            res.len(),
            res.ledger.total()
        );
        for row in res.rows_in_head_order().iter().take(6) {
            let cells: Vec<String> = row.iter().map(std::string::ToString::to_string).collect();
            println!("    ({})", cells.join(", "));
        }
        println!();
    }

    // Recursive Datalog: transitive closure of `follows`, via semi-naive
    // fixpoint evaluation — every iteration's rule bodies run through the
    // paper's pipeline.
    let rules =
        parse_rules("reach(x, y) :- follows(x, y). reach(x, z) :- reach(x, y), follows(y, z).")
            .unwrap();
    let closure = evaluate_datalog(&db, &rules, PlanStrategy::Greedy).unwrap();
    println!(
        "transitive closure: {} facts in {} semi-naive iterations (total cost {})",
        closure.facts_of("reach").len(),
        closure.iterations,
        closure.total_cost
    );
    for row in closure.facts_of("reach").iter().take(5) {
        println!("    reach({}, {})", row[0], row[1]);
    }
    println!(
        "    ...
"
    );

    // Strategy comparison on the cyclic triangle query.
    let q = parse_query("Tri(x, y, z) :- follows(x, y), follows(y, z), follows(z, x).").unwrap();
    println!("plan-strategy costs for {q}");
    for (name, s) in [
        ("greedy", PlanStrategy::Greedy),
        ("dp-optimal", PlanStrategy::DpOptimal),
        ("dp-cpf", PlanStrategy::DpCpf),
    ] {
        let res = execute_query(&db, &q, s).unwrap();
        println!("  {name:<10} cost {}", res.ledger.total());
    }
}
