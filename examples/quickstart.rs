//! Quick start: the paper's pipeline end to end on its running example.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the cyclic scheme `{ABC, CDE, EFG, GHA}`, takes the optimal but
//! non-CPF join expression `(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)`, runs Algorithm 1 to
//! get a CPF tree, Algorithm 2 to get a program, executes it, and checks the
//! two theorems.

use mjoin::prelude::*;
use mjoin::program::display;

fn main() {
    // 1. The database scheme (Example 1) and a small consistent database.
    let mut catalog = Catalog::new();
    let scheme = DbScheme::parse(&mut catalog, &["ABC", "CDE", "EFG", "GHA"]);
    println!("scheme 𝒟 = {}", scheme.display(&catalog));
    println!(
        "r = {}, a = {}, r(a+5) = {}\n",
        scheme.num_relations(),
        scheme.num_attrs(),
        scheme.quasi_factor()
    );

    let db = Database::from_relations(vec![
        relation_of_ints(&mut catalog, "ABC", &[&[1, 2, 3], &[1, 5, 3], &[4, 4, 4]]).unwrap(),
        relation_of_ints(&mut catalog, "CDE", &[&[3, 4, 5], &[3, 9, 5]]).unwrap(),
        relation_of_ints(&mut catalog, "EFG", &[&[5, 6, 7]]).unwrap(),
        relation_of_ints(&mut catalog, "GHA", &[&[7, 8, 1], &[7, 0, 1]]).unwrap(),
    ]);

    // 2. A join expression — Example 2's non-CPF, nonlinear one.
    let t1 = parse_join_tree(&catalog, &scheme, "(ABC ⋈ EFG) ⋈ (CDE ⋈ GHA)").unwrap();
    println!(
        "input join expression T₁ = {}",
        t1.display(&scheme, &catalog)
    );
    println!("  CPF? {}   linear? {}", t1.is_cpf(&scheme), t1.is_linear());

    // 3. Algorithm 1: make it Cartesian-product-free.
    let t2 = algorithm1(&scheme, &t1).unwrap();
    println!("\nAlgorithm 1 ⇒ T₂ = {}", t2.display(&scheme, &catalog));
    println!("  CPF? {}", t2.is_cpf(&scheme));

    // 4. Algorithm 2: derive a program from the CPF tree.
    let program = algorithm2(&scheme, &t2).unwrap();
    println!("\nAlgorithm 2 ⇒ program P ({} statements):", program.len());
    print!("{}", display::render(&program, &scheme, &catalog));

    // 5. Execute and account costs.
    let run = run_pipeline(&scheme, &t1, &db, &mut FirstChoice).unwrap();
    println!("\nP(D) result ({} tuples):", run.exec.result.len());
    println!("{}", run.exec.result.display(&catalog));

    println!("\ncost(T₁(D)) = {}", run.tree_cost);
    println!("cost(P(D))  = {}", run.program_cost());
    println!(
        "Theorem 1: P(D) = ⋈D?  {}",
        *run.exec.result == db.join_all()
    );
    println!(
        "Theorem 2: cost(P(D)) < r(a+5)·cost(T₁(D))?  {} ({} < {})",
        run.bound_holds(),
        run.program_cost(),
        run.quasi_factor * run.tree_cost
    );
}
