//! The classical acyclic toolkit vs the paper's program pipeline.
//!
//! ```text
//! cargo run --example acyclic_pipeline
//! ```
//!
//! On an acyclic (chain) scheme: run the Bernstein–Goodman full reducer,
//! show global consistency, evaluate the monotone join expression, run
//! Yannakakis for a projection — then run the paper's pipeline on the same
//! data and compare costs. On acyclic schemes both are polynomial; the
//! paper's contribution is that the pipeline *also* works on cyclic schemes
//! where the classical toolkit gives up (demonstrated at the end on
//! Example 3's database, where the semijoin fixpoint removes nothing).

use mjoin::prelude::*;

fn main() {
    let mut catalog = Catalog::new();
    let scheme = DbScheme::parse(&mut catalog, &["AB", "BC", "CD", "DE"]);
    println!("acyclic scheme: {}", scheme.display(&catalog));
    println!("GYO says acyclic? {}\n", is_acyclic(&scheme));

    // A chain database with dangling tuples at several links.
    let db = Database::from_relations(vec![
        relation_of_ints(&mut catalog, "AB", &[&[1, 2], &[1, 3], &[9, 90]]).unwrap(),
        relation_of_ints(&mut catalog, "BC", &[&[2, 4], &[3, 4], &[80, 80]]).unwrap(),
        relation_of_ints(&mut catalog, "CD", &[&[4, 5], &[70, 70]]).unwrap(),
        relation_of_ints(&mut catalog, "DE", &[&[5, 6], &[5, 7]]).unwrap(),
    ]);
    println!(
        "inputs: {} tuples total; globally consistent? {}",
        db.total_tuples(),
        globally_consistent(&db)
    );

    // 1. Full reducer.
    let (reduced, red_ledger) = fully_reduce(&scheme, &db).unwrap();
    println!(
        "\nfull reducer: {} semijoins, cost {} tuples",
        red_ledger.entries().len(),
        red_ledger.total()
    );
    println!(
        "after reduction: globally consistent? {}",
        globally_consistent(&reduced)
    );

    // 2. Monotone join expression on the reduced database.
    let mono = monotone_join_tree(&scheme).unwrap();
    println!("\nmonotone join order: {}", mono.display(&scheme, &catalog));
    let eval = evaluate(&mono, &reduced);
    println!(
        "final join: {} tuples; peak intermediate {} (never exceeds the final size)",
        eval.relation.len(),
        eval.ledger.peak_generated()
    );
    assert_eq!(eval.relation, db.join_all());

    // 3. Yannakakis for a projection π_AE(⋈D).
    let a = catalog.lookup("A").unwrap();
    let e = catalog.lookup("E").unwrap();
    let out = AttrSet::from_iter_ids([a, e]);
    let (proj, yan_ledger) = yannakakis(&scheme, &db, &out).unwrap();
    println!(
        "\nYannakakis π_AE(⋈D): {} tuples, cost {}",
        proj.len(),
        yan_ledger.total()
    );
    println!("{}", proj.display(&catalog));

    // 4. The paper's pipeline on the same data (works on any connected
    //    scheme, acyclic or not).
    let mut oracle = ExactOracle::new(&db);
    let t1 = optimize(&scheme, &mut oracle, SearchSpace::All).unwrap();
    let run = run_pipeline(&scheme, &t1.tree, &db, &mut FirstChoice).unwrap();
    println!(
        "\npaper pipeline from the optimal tree: cost(T₁) = {}, cost(P) = {}",
        run.tree_cost,
        run.program_cost()
    );
    assert_eq!(*run.exec.result, db.join_all());

    // 5. Where the classical toolkit stops: Example 3's cyclic database is
    //    pairwise consistent, so the semijoin fixpoint removes nothing.
    println!("\n--- cyclic contrast (Example 3, m = 5) ---");
    let ex = Example3::new(5);
    let mut c2 = Catalog::new();
    let cyc_scheme = Example3::scheme(&mut c2);
    let cyc_db = ex.database(&mut c2);
    println!("acyclic? {}", is_acyclic(&cyc_scheme));
    let mut ledger = CostLedger::new();
    let (_, effective) = semijoin_fixpoint(&cyc_db, &mut ledger);
    println!("semijoin fixpoint: {effective} effective semijoins (the paper: 'useless to apply a semijoin program')");
    let t1 = Example3::optimal_tree();
    let run = run_pipeline(&cyc_scheme, &t1, &cyc_db, &mut FirstChoice).unwrap();
    println!(
        "paper pipeline still works: P(D) = ⋈D ({} tuple), cost {}",
        run.exec.result.len(),
        run.program_cost()
    );
}
